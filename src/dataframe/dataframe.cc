#include "dataframe/dataframe.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace ccs::dataframe {

Status DataFrame::CheckNewColumn(const std::string& name,
                                 size_t length) const {
  if (schema_.Contains(name)) {
    return Status::AlreadyExists("column already exists: " + name);
  }
  if (!columns_.empty() && length != num_rows_) {
    return Status::InvalidArgument(
        "column " + name + " has length " + std::to_string(length) +
        " but the frame has " + std::to_string(num_rows_) + " rows");
  }
  return Status::OK();
}

Status DataFrame::AddNumericColumn(const std::string& name,
                                   std::vector<double> values) {
  CCS_RETURN_IF_ERROR(CheckNewColumn(name, values.size()));
  num_rows_ = values.size();
  CCS_RETURN_IF_ERROR(schema_.AddAttribute(name, AttributeType::kNumeric));
  columns_.push_back(Column::Numeric(std::move(values)));
  return Status::OK();
}

Status DataFrame::AddCategoricalColumn(const std::string& name,
                                       std::vector<std::string> values) {
  CCS_RETURN_IF_ERROR(CheckNewColumn(name, values.size()));
  num_rows_ = values.size();
  CCS_RETURN_IF_ERROR(schema_.AddAttribute(name, AttributeType::kCategorical));
  columns_.push_back(Column::Categorical(values));
  return Status::OK();
}

Status DataFrame::AddColumn(const std::string& name, Column column) {
  CCS_RETURN_IF_ERROR(CheckNewColumn(name, column.size()));
  num_rows_ = column.size();
  CCS_RETURN_IF_ERROR(schema_.AddAttribute(name, column.type()));
  columns_.push_back(std::move(column));
  return Status::OK();
}

StatusOr<const Column*> DataFrame::ColumnByName(const std::string& name) const {
  CCS_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(name));
  return &columns_[idx];
}

StatusOr<double> DataFrame::NumericValue(size_t row,
                                         const std::string& name) const {
  CCS_ASSIGN_OR_RETURN(const Column* col, ColumnByName(name));
  if (!col->is_numeric()) {
    return Status::InvalidArgument("column is not numeric: " + name);
  }
  if (row >= num_rows_) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  return col->NumericAt(row);
}

StatusOr<std::string> DataFrame::CategoricalValue(
    size_t row, const std::string& name) const {
  CCS_ASSIGN_OR_RETURN(const Column* col, ColumnByName(name));
  if (col->is_numeric()) {
    return Status::InvalidArgument("column is not categorical: " + name);
  }
  if (row >= num_rows_) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  return col->CategoricalAt(row);
}

linalg::Vector DataFrame::NumericRow(size_t row) const {
  CCS_CHECK(row < num_rows_);
  std::vector<size_t> numeric = schema_.NumericIndices();
  linalg::Vector out(numeric.size());
  for (size_t i = 0; i < numeric.size(); ++i) {
    out[i] = columns_[numeric[i]].NumericAt(row);
  }
  return out;
}

linalg::Matrix DataFrame::NumericMatrix() const {
  std::vector<size_t> numeric = schema_.NumericIndices();
  linalg::Matrix out(num_rows_, numeric.size());
  for (size_t j = 0; j < numeric.size(); ++j) {
    const Column& col = columns_[numeric[j]];
    for (size_t i = 0; i < num_rows_; ++i) out.At(i, j) = col.NumericAt(i);
  }
  return out;
}

StatusOr<linalg::Matrix> DataFrame::NumericMatrixFor(
    const std::vector<std::string>& names) const {
  // One pass per column over raw buffers: views gather through the
  // selection vector directly instead of re-resolving it per cell.
  linalg::Matrix out(num_rows_, names.size());
  for (size_t j = 0; j < names.size(); ++j) {
    CCS_ASSIGN_OR_RETURN(const Column* col, ColumnByName(names[j]));
    if (!col->is_numeric()) {
      return Status::InvalidArgument("column is not numeric: " + names[j]);
    }
    const std::vector<double>& buf = col->numeric_buffer();
    if (const std::vector<size_t>* sel = col->selection()) {
      for (size_t i = 0; i < num_rows_; ++i) out.At(i, j) = buf[(*sel)[i]];
    } else {
      for (size_t i = 0; i < num_rows_; ++i) out.At(i, j) = buf[i];
    }
  }
  return out;
}

StatusOr<linalg::Matrix> DataFrame::NumericMatrixFor(
    const std::vector<std::string>& names,
    const std::vector<size_t>& rows) const {
  // Validate the row subset once up front: the gather loop below then
  // runs branch-free per cell, and a bad index can no longer leave the
  // caller with partially gathered columns' worth of wasted work.
  for (size_t r : rows) {
    if (r >= num_rows_) {
      return Status::OutOfRange("NumericMatrixFor: row index out of range");
    }
  }
  linalg::Matrix out(rows.size(), names.size());
  for (size_t j = 0; j < names.size(); ++j) {
    CCS_ASSIGN_OR_RETURN(const Column* col, ColumnByName(names[j]));
    if (!col->is_numeric()) {
      return Status::InvalidArgument("column is not numeric: " + names[j]);
    }
    const std::vector<double>& buf = col->numeric_buffer();
    if (const std::vector<size_t>* sel = col->selection()) {
      for (size_t i = 0; i < rows.size(); ++i) out.At(i, j) = buf[(*sel)[rows[i]]];
    } else {
      for (size_t i = 0; i < rows.size(); ++i) out.At(i, j) = buf[rows[i]];
    }
  }
  return out;
}

StatusOr<linalg::MatrixView> DataFrame::NumericViewFor(
    const std::vector<std::string>& names) const {
  std::vector<linalg::MatrixView::ColumnRef> refs;
  refs.reserve(names.size());
  for (const std::string& name : names) {
    CCS_ASSIGN_OR_RETURN(const Column* col, ColumnByName(name));
    if (!col->is_numeric()) {
      return Status::InvalidArgument("column is not numeric: " + name);
    }
    refs.push_back({col->numeric_buffer().data(), col->selection()});
  }
  return linalg::MatrixView(num_rows_, std::move(refs));
}

StatusOr<linalg::MatrixView> DataFrame::NumericViewFor(
    const std::vector<std::string>& names,
    const std::vector<size_t>& rows) const {
  for (size_t r : rows) {
    if (r >= num_rows_) {
      return Status::OutOfRange("NumericViewFor: row index out of range");
    }
  }
  std::vector<linalg::MatrixView::ColumnRef> refs;
  refs.reserve(names.size());
  for (const std::string& name : names) {
    CCS_ASSIGN_OR_RETURN(const Column* col, ColumnByName(name));
    if (!col->is_numeric()) {
      return Status::InvalidArgument("column is not numeric: " + name);
    }
    refs.push_back({col->numeric_buffer().data(), col->selection()});
  }
  return linalg::MatrixView(rows.size(), std::move(refs), &rows);
}

ColumnExpr ColumnExpr::Source(std::string name) {
  ColumnExpr expr;
  expr.op = linalg::ColumnOp::kSource;
  expr.inputs.push_back(std::move(name));
  return expr;
}

ColumnExpr ColumnExpr::Scale(std::string name, double shift, double divide) {
  ColumnExpr expr;
  expr.op = linalg::ColumnOp::kScale;
  expr.inputs.push_back(std::move(name));
  expr.shift = shift;
  expr.divide = divide;
  return expr;
}

ColumnExpr ColumnExpr::Product(std::string a, std::string b) {
  ColumnExpr expr;
  expr.op = linalg::ColumnOp::kProduct;
  expr.inputs.push_back(std::move(a));
  expr.inputs.push_back(std::move(b));
  return expr;
}

ColumnExpr ColumnExpr::Combine(std::vector<std::string> columns,
                               const std::vector<double>* weights) {
  ColumnExpr expr;
  expr.op = linalg::ColumnOp::kCombine;
  expr.inputs = std::move(columns);
  expr.weights = weights;
  return expr;
}

namespace {

// Resolves one expression into a ColumnRef (appending any derived
// inputs to the view's source pool). Shared by both DerivedViewFor
// overloads.
Status AppendExprColumn(const DataFrame& df, const ColumnExpr& expr,
                        std::vector<linalg::MatrixView::ColumnRef>* refs,
                        std::vector<linalg::ViewSource>* sources) {
  std::vector<linalg::ViewSource> inputs;
  inputs.reserve(expr.inputs.size());
  for (const std::string& name : expr.inputs) {
    CCS_ASSIGN_OR_RETURN(const Column* col, df.ColumnByName(name));
    if (!col->is_numeric()) {
      return Status::InvalidArgument("column is not numeric: " + name);
    }
    inputs.push_back({col->numeric_buffer().data(), col->selection()});
  }
  linalg::MatrixView::ColumnRef ref;
  ref.op = expr.op;
  switch (expr.op) {
    case linalg::ColumnOp::kSource:
      if (inputs.size() != 1) {
        return Status::InvalidArgument(
            "ColumnExpr: Source takes exactly 1 input column");
      }
      ref.buffer = inputs[0].buffer;
      ref.selection = inputs[0].selection;
      refs->push_back(ref);
      return Status::OK();
    case linalg::ColumnOp::kScale:
      if (inputs.size() != 1) {
        return Status::InvalidArgument(
            "ColumnExpr: Scale takes exactly 1 input column");
      }
      ref.shift = expr.shift;
      ref.divide = expr.divide;
      break;
    case linalg::ColumnOp::kProduct:
      if (inputs.size() != 2) {
        return Status::InvalidArgument(
            "ColumnExpr: Product takes exactly 2 input columns");
      }
      break;
    case linalg::ColumnOp::kCombine:
      if (inputs.empty()) {
        return Status::InvalidArgument(
            "ColumnExpr: Combine takes at least 1 input column");
      }
      if (expr.weights == nullptr || expr.weights->size() != inputs.size()) {
        return Status::InvalidArgument(
            "ColumnExpr: Combine weights must match input columns");
      }
      ref.weights = expr.weights->data();
      break;
  }
  ref.input_begin = sources->size();
  ref.input_count = inputs.size();
  sources->insert(sources->end(), inputs.begin(), inputs.end());
  refs->push_back(ref);
  return Status::OK();
}

}  // namespace

StatusOr<linalg::MatrixView> DataFrame::DerivedViewFor(
    const std::vector<ColumnExpr>& exprs) const {
  std::vector<linalg::MatrixView::ColumnRef> refs;
  std::vector<linalg::ViewSource> sources;
  refs.reserve(exprs.size());
  for (const ColumnExpr& expr : exprs) {
    CCS_RETURN_IF_ERROR(AppendExprColumn(*this, expr, &refs, &sources));
  }
  return linalg::MatrixView(num_rows_, std::move(refs), std::move(sources));
}

StatusOr<linalg::MatrixView> DataFrame::DerivedViewFor(
    const std::vector<ColumnExpr>& exprs,
    const std::vector<size_t>& rows) const {
  for (size_t r : rows) {
    if (r >= num_rows_) {
      return Status::OutOfRange("DerivedViewFor: row index out of range");
    }
  }
  std::vector<linalg::MatrixView::ColumnRef> refs;
  std::vector<linalg::ViewSource> sources;
  refs.reserve(exprs.size());
  for (const ColumnExpr& expr : exprs) {
    CCS_RETURN_IF_ERROR(AppendExprColumn(*this, expr, &refs, &sources));
  }
  return linalg::MatrixView(rows.size(), std::move(refs), std::move(sources),
                            &rows);
}

std::vector<std::string> DataFrame::NumericNames() const {
  std::vector<std::string> out;
  for (size_t i : schema_.NumericIndices()) {
    out.push_back(schema_.attribute(i).name);
  }
  return out;
}

std::vector<std::string> DataFrame::CategoricalNames() const {
  std::vector<std::string> out;
  for (size_t i : schema_.CategoricalIndices()) {
    out.push_back(schema_.attribute(i).name);
  }
  return out;
}

DataFrame DataFrame::Filter(
    const std::function<bool(size_t)>& predicate) const {
  std::vector<size_t> keep;
  for (size_t i = 0; i < num_rows_; ++i) {
    if (predicate(i)) keep.push_back(i);
  }
  return Gather(keep);
}

DataFrame DataFrame::Slice(size_t begin, size_t end) const {
  begin = std::min(begin, num_rows_);
  end = std::min(std::max(end, begin), num_rows_);
  std::vector<size_t> keep;
  keep.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) keep.push_back(i);
  return Gather(keep);
}

DataFrame DataFrame::Gather(const std::vector<size_t>& indices) const {
  for (size_t i : indices) CCS_DCHECK(i < num_rows_);
  DataFrame out;
  out.schema_ = schema_;
  out.num_rows_ = indices.size();
  out.columns_.reserve(columns_.size());
  // Columns of one frame normally share one selection vector; compose
  // `indices` with each *distinct* existing selection once and share the
  // result, so a gather allocates O(#distinct selections) index vectors,
  // not O(#columns).
  std::map<const std::vector<size_t>*,
           std::shared_ptr<const std::vector<size_t>>>
      composed;
  for (const Column& col : columns_) {
    const std::vector<size_t>* sel = col.selection();
    std::shared_ptr<const std::vector<size_t>>& slot = composed[sel];
    if (!slot) {
      if (sel == nullptr) {
        slot = std::make_shared<const std::vector<size_t>>(indices);
      } else {
        auto physical = std::make_shared<std::vector<size_t>>();
        physical->reserve(indices.size());
        for (size_t i : indices) physical->push_back((*sel)[i]);
        slot = std::move(physical);
      }
    }
    out.columns_.push_back(col.WithSelection(slot));
  }
  return out;
}

DataFrame DataFrame::Sample(size_t k, Rng* rng) const {
  k = std::min(k, num_rows_);
  std::vector<size_t> perm = rng->Permutation(num_rows_);
  perm.resize(k);
  return Gather(perm);
}

StatusOr<DataFrame> DataFrame::Concat(const DataFrame& other) const {
  if (!(schema_ == other.schema_)) {
    return Status::InvalidArgument("Concat: schema mismatch");
  }
  DataFrame out;
  out.schema_ = schema_;
  out.num_rows_ = num_rows_ + other.num_rows_;
  out.columns_.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.columns_.push_back(Column::Concat(columns_[c], other.columns_[c]));
  }
  return out;
}

bool DataFrame::is_view() const {
  for (const Column& col : columns_) {
    if (col.is_view()) return true;
  }
  return false;
}

DataFrame DataFrame::Materialize() const {
  DataFrame out;
  out.schema_ = schema_;
  out.num_rows_ = num_rows_;
  out.columns_.reserve(columns_.size());
  for (const Column& col : columns_) {
    out.columns_.push_back(col.Materialize());
  }
  return out;
}

StatusOr<std::map<std::string, DataFrame>> DataFrame::PartitionBy(
    const std::string& attribute) const {
  CCS_ASSIGN_OR_RETURN(const Column* col, ColumnByName(attribute));
  if (col->is_numeric()) {
    return Status::InvalidArgument(
        "PartitionBy requires a categorical attribute: " + attribute);
  }
  // Bucket row indices by dictionary code — one integer lookup per row,
  // no string hashing — then emit one view per non-empty code. The
  // std::map keys the output by dictionary *string*, so the result
  // order matches the pre-dictionary implementation exactly.
  const std::vector<std::string>& dict = col->dictionary();
  std::vector<std::vector<size_t>> buckets(dict.size());
  for (size_t i = 0; i < num_rows_; ++i) {
    buckets[col->CodeAt(i)].push_back(i);
  }
  std::map<std::string, DataFrame> out;
  for (size_t code = 0; code < buckets.size(); ++code) {
    if (buckets[code].empty()) continue;
    out.emplace(dict[code], Gather(buckets[code]));
  }
  return out;
}

StatusOr<DataFrame> DataFrame::DropColumns(
    const std::vector<std::string>& names) const {
  for (const std::string& name : names) {
    if (!schema_.Contains(name)) {
      return Status::NotFound("DropColumns: no column named " + name);
    }
  }
  DataFrame out;
  out.num_rows_ = num_rows_;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const std::string& name = schema_.attribute(i).name;
    if (std::find(names.begin(), names.end(), name) != names.end()) continue;
    CCS_RETURN_IF_ERROR(out.schema_.AddAttribute(name, columns_[i].type()));
    out.columns_.push_back(columns_[i]);
  }
  return out;
}

StatusOr<DataFrame> DataFrame::SelectColumns(
    const std::vector<std::string>& names) const {
  DataFrame out;
  out.num_rows_ = num_rows_;
  for (const std::string& name : names) {
    CCS_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(name));
    CCS_RETURN_IF_ERROR(
        out.schema_.AddAttribute(name, columns_[idx].type()));
    out.columns_.push_back(columns_[idx]);
  }
  return out;
}

std::string DataFrame::Describe() const {
  std::ostringstream os;
  os << "DataFrame: " << num_rows_ << " rows x " << columns_.size()
     << " columns\n";
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Attribute& attr = schema_.attribute(i);
    os << "  " << attr.name << " (" << AttributeTypeToString(attr.type)
       << ")";
    if (columns_[i].is_numeric() && num_rows_ > 0) {
      linalg::Vector v = columns_[i].ToVector();
      os << " mean=" << FormatDouble(v.Mean())
         << " std=" << FormatDouble(v.StdDev())
         << " min=" << FormatDouble(v.Min())
         << " max=" << FormatDouble(v.Max());
    } else if (!columns_[i].is_numeric()) {
      os << " distinct=" << columns_[i].DistinctValues().size();
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ccs::dataframe
