#include "dataframe/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace ccs::dataframe {

namespace {

// Parses one logical CSV record (possibly spanning physical lines when a
// quoted field contains newlines). Returns false at end of stream with no
// data consumed. `lines_consumed`, when non-null, receives the number of
// physical lines the record spanned (>= 1 whenever a record was read,
// counting a final unterminated line as one) so callers can report
// 1-based physical line numbers in diagnostics.
StatusOr<bool> ReadRecord(std::istream& in, char delimiter,
                          std::vector<std::string>* fields,
                          size_t* lines_consumed = nullptr) {
  fields->clear();
  if (lines_consumed != nullptr) *lines_consumed = 0;
  int first = in.peek();
  if (first == std::char_traits<char>::eof()) return false;

  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  size_t lines = 0;
  bool line_terminated = false;
  char c;
  while (in.get(c)) {
    saw_any = true;
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get(c);
          field.push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++lines;  // Embedded newline in a quoted field.
        field.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
    } else if (c == delimiter) {
      fields->push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      ++lines;
      line_terminated = true;
      break;
    } else if (c == '\r') {
      if (in.peek() == '\n') in.get(c);
      ++lines;
      line_terminated = true;
      break;
    } else {
      field.push_back(c);
    }
  }
  if (saw_any && !line_terminated) ++lines;  // EOF without a newline.
  if (lines_consumed != nullptr) *lines_consumed = lines;
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field");
  }
  if (!saw_any) return false;
  fields->push_back(std::move(field));
  return true;
}

// Numeric-cell conversion shared by ReadCsv and CsvChunkReader: empty
// cells map to `missing`; nullopt means a non-empty cell that does not
// parse as a double.
std::optional<double> NumericCell(const std::string& cell, double missing) {
  if (Trim(cell).empty()) return missing;
  return ParseDouble(cell);
}

}  // namespace

StatusOr<DataFrame> ReadCsv(std::istream& in, const CsvOptions& options) {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> cells;  // Column-major.
  size_t num_cols = 0;
  size_t row_index = 0;

  std::vector<std::string> record;
  while (true) {
    StatusOr<bool> got_or = ReadRecord(in, options.delimiter, &record);
    if (!got_or.ok()) {
      return Status::InvalidArgument("CSV: " + got_or.status().message());
    }
    if (!*got_or) break;
    if (row_index == 0) {
      num_cols = record.size();
      cells.resize(num_cols);
      if (options.has_header) {
        header = record;
        ++row_index;
        continue;
      }
    }
    if (record.size() != num_cols) {
      return Status::InvalidArgument(
          "CSV: row " + std::to_string(row_index) + " has " +
          std::to_string(record.size()) + " fields, expected " +
          std::to_string(num_cols));
    }
    for (size_t c = 0; c < num_cols; ++c) {
      cells[c].push_back(std::move(record[c]));
    }
    ++row_index;
  }

  if (num_cols == 0) {
    return Status::InvalidArgument("CSV: empty input");
  }
  if (header.empty()) {
    for (size_t c = 0; c < num_cols; ++c) {
      header.push_back("c" + std::to_string(c));
    }
  }

  DataFrame df;
  for (size_t c = 0; c < num_cols; ++c) {
    bool numeric = options.infer_types && !cells[c].empty();
    if (options.infer_types) {
      bool any_value = false;
      for (const std::string& cell : cells[c]) {
        if (Trim(cell).empty()) continue;
        any_value = true;
        if (!ParseDouble(cell).has_value()) {
          numeric = false;
          break;
        }
      }
      if (!any_value) numeric = false;  // All-empty column: categorical.
    } else {
      numeric = false;
    }
    if (numeric) {
      std::vector<double> values;
      values.reserve(cells[c].size());
      for (const std::string& cell : cells[c]) {
        // Inference already proved every non-empty cell parses.
        auto parsed = NumericCell(cell, options.missing_numeric);
        values.push_back(parsed.value_or(options.missing_numeric));
      }
      CCS_RETURN_IF_ERROR(df.AddNumericColumn(header[c], std::move(values)));
    } else {
      CCS_RETURN_IF_ERROR(
          df.AddCategoricalColumn(header[c], std::move(cells[c])));
    }
  }
  return df;
}

StatusOr<DataFrame> ReadCsvFile(const std::string& path,
                                const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open file: " + path);
  return ReadCsv(in, options);
}

CsvChunkReader::CsvChunkReader(std::istream* in, Schema schema,
                               CsvOptions options)
    : in_(in),
      schema_(std::move(schema)),
      options_(options),
      dicts_(schema_.num_attributes()) {}

Status CsvChunkReader::ReadHeader() {
  col_map_.assign(schema_.num_attributes(), 0);
  if (!options_.has_header) {
    // Positional mapping: schema attribute i <- stream field i.
    stream_columns_ = schema_.num_attributes();
    for (size_t i = 0; i < schema_.num_attributes(); ++i) col_map_[i] = i;
    header_done_ = true;
    return Status::OK();
  }
  std::vector<std::string> header;
  size_t header_lines = 0;
  StatusOr<bool> got = ReadRecord(*in_, options_.delimiter, &header,
                                  &header_lines);
  if (!got.ok()) {
    return Status::InvalidArgument("CsvChunkReader: header (line 1): " +
                                   got.status().message());
  }
  line_ += header_lines;
  if (!*got) {
    return Status::InvalidArgument("CsvChunkReader: empty input");
  }
  stream_columns_ = header.size();
  for (size_t i = 0; i < schema_.num_attributes(); ++i) {
    const std::string& name = schema_.attribute(i).name;
    bool found = false;
    for (size_t c = 0; c < header.size(); ++c) {
      if (header[c] == name) {
        col_map_[i] = c;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          "CsvChunkReader: stream header is missing schema column '" + name +
          "'");
    }
  }
  header_done_ = true;
  return Status::OK();
}

StatusOr<DataFrame> CsvChunkReader::ReadChunk(size_t max_rows) {
  // A malformed row diagnosed on the previous call (after good rows had
  // already been parsed into that chunk) was deferred so the good prefix
  // could be delivered first; surface it now.
  if (!pending_error_.ok()) {
    Status error = std::move(pending_error_);
    pending_error_ = Status::OK();
    return error;
  }
  if (!header_done_) CCS_RETURN_IF_ERROR(ReadHeader());

  const size_t m = schema_.num_attributes();
  std::vector<std::vector<double>> numeric(m);
  std::vector<std::vector<uint32_t>> categorical(m);

  // Diagnoses the malformed record on physical line `record_line` and
  // either returns it (no rows parsed yet) or stashes it and truncates
  // the partially-parsed row, so the caller first receives every good
  // row and then — on its next call — the error. Teardown behavior is
  // therefore independent of where chunk boundaries fall.
  std::vector<std::string> record;
  size_t rows = 0;
  Status malformed;
  while (rows < max_rows) {
    size_t record_lines = 0;
    StatusOr<bool> got =
        ReadRecord(*in_, options_.delimiter, &record, &record_lines);
    const size_t record_line = line_ + 1;  // 1-based physical line.
    line_ += record_lines;
    if (!got.ok()) {
      malformed = Status::InvalidArgument(
          "CsvChunkReader: line " + std::to_string(record_line) +
          " (data row " + std::to_string(rows_read_ + rows + 1) + "): " +
          got.status().message());
      break;
    }
    if (!*got) break;  // End of stream.
    // Header-mapped streams must match the header width exactly (the
    // ragged-row rule of ReadCsv); headerless streams may carry extra
    // trailing fields beyond the schema's.
    bool ragged = options_.has_header ? record.size() != stream_columns_
                                      : record.size() < stream_columns_;
    if (ragged) {
      malformed = Status::InvalidArgument(
          "CsvChunkReader: line " + std::to_string(record_line) +
          " (data row " + std::to_string(rows_read_ + rows + 1) + "): has " +
          std::to_string(record.size()) + " fields, expected " +
          std::to_string(stream_columns_));
      break;
    }
    for (size_t i = 0; i < m; ++i) {
      const std::string& cell = record[col_map_[i]];
      if (schema_.attribute(i).type == AttributeType::kNumeric) {
        auto parsed = NumericCell(cell, options_.missing_numeric);
        if (!parsed.has_value()) {
          malformed = Status::InvalidArgument(
              "CsvChunkReader: line " + std::to_string(record_line) +
              " (data row " + std::to_string(rows_read_ + rows + 1) +
              "), column '" + schema_.attribute(i).name + "' (stream field " +
              std::to_string(col_map_[i]) + "): cannot parse '" + cell +
              "' as a number");
          break;
        }
        numeric[i].push_back(*parsed);
      } else {
        // Intern into the stream-lifetime dictionary: steady-state
        // chunks share one dictionary object, so downstream code paths
        // compare codes without consulting the strings.
        categorical[i].push_back(dicts_[i].Intern(cell));
      }
    }
    if (!malformed.ok()) break;
    ++rows;
  }

  if (!malformed.ok()) {
    if (rows == 0) return malformed;  // Nothing good to deliver first.
    pending_error_ = std::move(malformed);
    // Drop the malformed row's partially-parsed cells: every per-column
    // vector must end at the last good row.
    for (size_t i = 0; i < m; ++i) {
      if (numeric[i].size() > rows) numeric[i].resize(rows);
      if (categorical[i].size() > rows) categorical[i].resize(rows);
    }
  }

  DataFrame df;
  for (size_t i = 0; i < m; ++i) {
    const Attribute& attr = schema_.attribute(i);
    if (attr.type == AttributeType::kNumeric) {
      CCS_RETURN_IF_ERROR(
          df.AddNumericColumn(attr.name, std::move(numeric[i])));
    } else {
      CCS_RETURN_IF_ERROR(df.AddColumn(
          attr.name, Column::CategoricalFromCodes(std::move(categorical[i]),
                                                  dicts_[i].snapshot())));
    }
  }
  rows_read_ += rows;
  return df;
}

namespace {

void WriteField(std::ostream& out, const std::string& field, char delimiter) {
  bool needs_quotes = field.find(delimiter) != std::string::npos ||
                      field.find('"') != std::string::npos ||
                      field.find('\n') != std::string::npos ||
                      field.find('\r') != std::string::npos;
  if (!needs_quotes) {
    out << field;
    return;
  }
  out << '"';
  for (char c : field) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

Status WriteCsv(const DataFrame& df, std::ostream& out,
                const CsvOptions& options) {
  const char d = options.delimiter;
  if (options.has_header) {
    for (size_t c = 0; c < df.num_columns(); ++c) {
      if (c > 0) out << d;
      WriteField(out, df.schema().attribute(c).name, d);
    }
    out << '\n';
  }
  for (size_t r = 0; r < df.num_rows(); ++r) {
    for (size_t c = 0; c < df.num_columns(); ++c) {
      if (c > 0) out << d;
      const Column& col = df.column(c);
      if (col.is_numeric()) {
        out << FormatDouble(col.NumericAt(r));
      } else {
        WriteField(out, col.CategoricalAt(r), d);
      }
    }
    out << '\n';
  }
  if (!out) return Status::IoError("CSV write failed");
  return Status::OK();
}

Status WriteCsvFile(const DataFrame& df, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open file for write: " + path);
  return WriteCsv(df, out, options);
}

}  // namespace ccs::dataframe
