#include "dataframe/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace ccs::dataframe {

namespace {

// Parses one logical CSV record (possibly spanning physical lines when a
// quoted field contains newlines). Returns false at end of stream with no
// data consumed.
StatusOr<bool> ReadRecord(std::istream& in, char delimiter,
                          std::vector<std::string>* fields) {
  fields->clear();
  int first = in.peek();
  if (first == std::char_traits<char>::eof()) return false;

  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  char c;
  while (in.get(c)) {
    saw_any = true;
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get(c);
          field.push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
    } else if (c == delimiter) {
      fields->push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      break;
    } else if (c == '\r') {
      if (in.peek() == '\n') in.get(c);
      break;
    } else {
      field.push_back(c);
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("CSV: unterminated quoted field");
  }
  if (!saw_any) return false;
  fields->push_back(std::move(field));
  return true;
}

}  // namespace

StatusOr<DataFrame> ReadCsv(std::istream& in, const CsvOptions& options) {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> cells;  // Column-major.
  size_t num_cols = 0;
  size_t row_index = 0;

  std::vector<std::string> record;
  while (true) {
    CCS_ASSIGN_OR_RETURN(bool got, ReadRecord(in, options.delimiter, &record));
    if (!got) break;
    if (row_index == 0) {
      num_cols = record.size();
      cells.resize(num_cols);
      if (options.has_header) {
        header = record;
        ++row_index;
        continue;
      }
    }
    if (record.size() != num_cols) {
      return Status::InvalidArgument(
          "CSV: row " + std::to_string(row_index) + " has " +
          std::to_string(record.size()) + " fields, expected " +
          std::to_string(num_cols));
    }
    for (size_t c = 0; c < num_cols; ++c) {
      cells[c].push_back(std::move(record[c]));
    }
    ++row_index;
  }

  if (num_cols == 0) {
    return Status::InvalidArgument("CSV: empty input");
  }
  if (header.empty()) {
    for (size_t c = 0; c < num_cols; ++c) {
      header.push_back("c" + std::to_string(c));
    }
  }

  DataFrame df;
  for (size_t c = 0; c < num_cols; ++c) {
    bool numeric = options.infer_types && !cells[c].empty();
    if (options.infer_types) {
      bool any_value = false;
      for (const std::string& cell : cells[c]) {
        if (Trim(cell).empty()) continue;
        any_value = true;
        if (!ParseDouble(cell).has_value()) {
          numeric = false;
          break;
        }
      }
      if (!any_value) numeric = false;  // All-empty column: categorical.
    } else {
      numeric = false;
    }
    if (numeric) {
      std::vector<double> values;
      values.reserve(cells[c].size());
      for (const std::string& cell : cells[c]) {
        auto parsed = ParseDouble(cell);
        values.push_back(parsed.value_or(options.missing_numeric));
      }
      CCS_RETURN_IF_ERROR(df.AddNumericColumn(header[c], std::move(values)));
    } else {
      CCS_RETURN_IF_ERROR(
          df.AddCategoricalColumn(header[c], std::move(cells[c])));
    }
  }
  return df;
}

StatusOr<DataFrame> ReadCsvFile(const std::string& path,
                                const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open file: " + path);
  return ReadCsv(in, options);
}

namespace {

void WriteField(std::ostream& out, const std::string& field, char delimiter) {
  bool needs_quotes = field.find(delimiter) != std::string::npos ||
                      field.find('"') != std::string::npos ||
                      field.find('\n') != std::string::npos ||
                      field.find('\r') != std::string::npos;
  if (!needs_quotes) {
    out << field;
    return;
  }
  out << '"';
  for (char c : field) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

Status WriteCsv(const DataFrame& df, std::ostream& out,
                const CsvOptions& options) {
  const char d = options.delimiter;
  if (options.has_header) {
    for (size_t c = 0; c < df.num_columns(); ++c) {
      if (c > 0) out << d;
      WriteField(out, df.schema().attribute(c).name, d);
    }
    out << '\n';
  }
  for (size_t r = 0; r < df.num_rows(); ++r) {
    for (size_t c = 0; c < df.num_columns(); ++c) {
      if (c > 0) out << d;
      const Column& col = df.column(c);
      if (col.is_numeric()) {
        out << FormatDouble(col.NumericAt(r));
      } else {
        WriteField(out, col.CategoricalAt(r), d);
      }
    }
    out << '\n';
  }
  if (!out) return Status::IoError("CSV write failed");
  return Status::OK();
}

Status WriteCsvFile(const DataFrame& df, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open file for write: " + path);
  return WriteCsv(df, out, options);
}

}  // namespace ccs::dataframe
