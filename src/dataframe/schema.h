// Relation schema: ordered, named, typed attributes.

#ifndef CCS_DATAFRAME_SCHEMA_H_
#define CCS_DATAFRAME_SCHEMA_H_

#include <string>
#include <vector>

#include "common/statusor.h"

namespace ccs::dataframe {

/// Attribute types distinguished by the conformance-constraint pipeline:
/// projections are built over numeric attributes only; disjunctive
/// constraints partition on categorical attributes (paper §4.2).
enum class AttributeType {
  kNumeric,
  kCategorical,
};

const char* AttributeTypeToString(AttributeType type);

/// One named, typed attribute.
struct Attribute {
  std::string name;
  AttributeType type;

  bool operator==(const Attribute& other) const {
    return name == other.name && type == other.type;
  }
};

/// An ordered list of attributes with unique names.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  /// Appends an attribute. Returns AlreadyExists on duplicate name.
  Status AddAttribute(std::string name, AttributeType type);

  size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute named `name`; NotFound if absent.
  StatusOr<size_t> IndexOf(const std::string& name) const;

  /// True if an attribute named `name` exists.
  bool Contains(const std::string& name) const;

  /// Indices of all numeric / categorical attributes, in schema order.
  std::vector<size_t> NumericIndices() const;
  std::vector<size_t> CategoricalIndices() const;

  bool operator==(const Schema& other) const {
    return attributes_ == other.attributes_;
  }

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace ccs::dataframe

#endif  // CCS_DATAFRAME_SCHEMA_H_
