#include "dataframe/schema.h"

namespace ccs::dataframe {

const char* AttributeTypeToString(AttributeType type) {
  switch (type) {
    case AttributeType::kNumeric:
      return "numeric";
    case AttributeType::kCategorical:
      return "categorical";
  }
  return "unknown";
}

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    for (size_t j = i + 1; j < attributes_.size(); ++j) {
      CCS_CHECK(attributes_[i].name != attributes_[j].name)
          << "duplicate attribute name " << attributes_[i].name;
    }
  }
}

Status Schema::AddAttribute(std::string name, AttributeType type) {
  if (Contains(name)) {
    return Status::AlreadyExists("attribute already in schema: " + name);
  }
  attributes_.push_back(Attribute{std::move(name), type});
  return Status::OK();
}

StatusOr<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named " + name);
}

bool Schema::Contains(const std::string& name) const {
  return IndexOf(name).ok();
}

std::vector<size_t> Schema::NumericIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].type == AttributeType::kNumeric) out.push_back(i);
  }
  return out;
}

std::vector<size_t> Schema::CategoricalIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].type == AttributeType::kCategorical) out.push_back(i);
  }
  return out;
}

}  // namespace ccs::dataframe
