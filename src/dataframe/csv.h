// CSV reader (with type inference) and writer for DataFrames.

#ifndef CCS_DATAFRAME_CSV_H_
#define CCS_DATAFRAME_CSV_H_

#include <istream>
#include <ostream>
#include <string>

#include "common/statusor.h"
#include "dataframe/dataframe.h"

namespace ccs::dataframe {

/// CSV parsing options.
struct CsvOptions {
  char delimiter = ',';
  /// First line holds column names. When false, columns are named c0..cK.
  bool has_header = true;
  /// A column is inferred numeric iff every non-empty cell parses as a
  /// double; otherwise it is categorical. When false, all columns are
  /// categorical.
  bool infer_types = true;
  /// Replacement for empty cells in a column inferred numeric.
  double missing_numeric = 0.0;
};

/// Parses a CSV stream into a DataFrame.
///
/// Supports RFC-4180-style double-quoted fields with embedded delimiters,
/// quotes ("" escaping), and newlines. Returns InvalidArgument on ragged
/// rows or unterminated quotes.
StatusOr<DataFrame> ReadCsv(std::istream& in,
                            const CsvOptions& options = CsvOptions());

/// Reads a CSV file from disk. IoError if the file cannot be opened.
StatusOr<DataFrame> ReadCsvFile(const std::string& path,
                                const CsvOptions& options = CsvOptions());

/// Writes a DataFrame as CSV (header row + data rows). Fields containing
/// the delimiter, quotes, or newlines are quoted.
Status WriteCsv(const DataFrame& df, std::ostream& out,
                const CsvOptions& options = CsvOptions());

/// Writes a DataFrame to a file.
Status WriteCsvFile(const DataFrame& df, const std::string& path,
                    const CsvOptions& options = CsvOptions());

}  // namespace ccs::dataframe

#endif  // CCS_DATAFRAME_CSV_H_
