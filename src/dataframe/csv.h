// CSV reader (with type inference) and writer for DataFrames.

#ifndef CCS_DATAFRAME_CSV_H_
#define CCS_DATAFRAME_CSV_H_

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "dataframe/dataframe.h"

namespace ccs::dataframe {

/// CSV parsing options.
struct CsvOptions {
  char delimiter = ',';
  /// First line holds column names. When false, columns are named c0..cK.
  bool has_header = true;
  /// A column is inferred numeric iff every non-empty cell parses as a
  /// double; otherwise it is categorical. When false, all columns are
  /// categorical.
  bool infer_types = true;
  /// Replacement for empty cells in a column inferred numeric.
  double missing_numeric = 0.0;
};

/// Parses a CSV stream into a DataFrame.
///
/// Supports RFC-4180-style double-quoted fields with embedded delimiters,
/// quotes ("" escaping), and newlines. Returns InvalidArgument on ragged
/// rows or unterminated quotes.
StatusOr<DataFrame> ReadCsv(std::istream& in,
                            const CsvOptions& options = CsvOptions());

/// Reads a CSV file from disk. IoError if the file cannot be opened.
StatusOr<DataFrame> ReadCsvFile(const std::string& path,
                                const CsvOptions& options = CsvOptions());

/// Incremental, schema-driven CSV reader for streaming ingestion.
///
/// ReadCsv buffers the whole stream before it can infer column types;
/// CsvChunkReader is instead given the schema up front (typically the
/// reference DataFrame's) and parses a bounded number of rows per call,
/// so a serving pipeline can start scoring long before EOF and its
/// memory stays proportional to the chunk size. The stream must carry
/// every schema column: matched by header name when options.has_header
/// is true (extra stream columns are ignored), positionally otherwise.
/// Numeric cells must parse as doubles; empty numeric cells map to
/// options.missing_numeric.
///
/// Categorical cells are interned at parse time into a per-column
/// dictionary that persists across chunks: once a stream's categorical
/// domain has been seen, chunks share one dictionary object, so
/// downstream consumers (Windower, PartitionBy, grouped scoring) compare
/// integer codes and never re-hash strings.
class CsvChunkReader {
 public:
  /// Reads from `in` (not owned; must outlive the reader) rows shaped
  /// like `schema`.
  CsvChunkReader(std::istream* in, Schema schema,
                 CsvOptions options = CsvOptions());

  /// Parses up to `max_rows` data rows into a DataFrame with exactly
  /// the schema's columns in schema order. Returns a 0-row frame at end
  /// of stream; InvalidArgument on ragged rows, unparseable numeric
  /// cells, unterminated quotes, or a header missing schema columns.
  ///
  /// Malformed mid-stream rows are diagnosed structurally — the error
  /// message carries the 1-based physical line, the 1-based data row,
  /// and (for cell errors) the schema column, stream field index, and
  /// offending cell text. When good rows were already parsed into the
  /// current chunk, that good prefix is returned first and the error is
  /// deferred to the *next* ReadChunk call, so every well-formed row
  /// before the malformation is delivered exactly once regardless of
  /// where chunk boundaries fall (StreamPipeline scores those windows,
  /// then tears down cleanly with this status).
  StatusOr<DataFrame> ReadChunk(size_t max_rows);

  /// Data rows successfully returned so far (header excluded).
  size_t rows_read() const { return rows_read_; }

  /// Physical lines consumed so far (header and quoted-field newlines
  /// included) — the line counter the malformed-row diagnostics report.
  size_t lines_consumed() const { return line_; }

  const Schema& schema() const { return schema_; }

 private:
  Status ReadHeader();

  std::istream* in_;
  Schema schema_;
  CsvOptions options_;
  std::vector<size_t> col_map_;  // schema index -> stream field index
  // One persistent interner per categorical schema slot (unused entries
  // stay empty for numeric slots).
  std::vector<DictionaryBuilder> dicts_;
  size_t stream_columns_ = 0;
  bool header_done_ = false;
  size_t rows_read_ = 0;
  size_t line_ = 0;  // Physical lines consumed.
  // Malformed-row error deferred until the good prefix is delivered.
  Status pending_error_;
};

/// Writes a DataFrame as CSV (header row + data rows). Fields containing
/// the delimiter, quotes, or newlines are quoted.
Status WriteCsv(const DataFrame& df, std::ostream& out,
                const CsvOptions& options = CsvOptions());

/// Writes a DataFrame to a file.
Status WriteCsvFile(const DataFrame& df, const std::string& path,
                    const CsvOptions& options = CsvOptions());

}  // namespace ccs::dataframe

#endif  // CCS_DATAFRAME_CSV_H_
