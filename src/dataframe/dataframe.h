// DataFrame: the in-memory relation the whole pipeline operates on.

#ifndef CCS_DATAFRAME_DATAFRAME_H_
#define CCS_DATAFRAME_DATAFRAME_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "dataframe/column.h"
#include "dataframe/schema.h"
#include "linalg/matrix.h"
#include "linalg/matrix_view.h"
#include "linalg/vector.h"

namespace ccs::dataframe {

/// A recipe for one (possibly derived) column of a DerivedViewFor
/// view: a named source column read through unchanged, or a computed
/// column over named numeric inputs. The expression is evaluated
/// lazily, block-by-block, by the linalg::internal::Eval*Column
/// kernels as view-walking consumers (Gram, scoring, mat-mul) touch
/// it — nothing is materialized. See docs/architecture.md, "Derived
/// columns".
struct ColumnExpr {
  /// The named numeric column, read through unchanged (zero-copy).
  static ColumnExpr Source(std::string name);
  /// (column - shift) / divide — the StandardScaler transform shape.
  static ColumnExpr Scale(std::string name, double shift, double divide);
  /// a * b elementwise — polynomial square (a == b) or cross term.
  static ColumnExpr Product(std::string a, std::string b);
  /// sum_k (*weights)[k] * columns[k], accumulated in ascending k — a
  /// projection. `weights` is borrowed (like the view it builds): it
  /// must hold exactly columns.size() entries and outlive any view
  /// built from this expression.
  static ColumnExpr Combine(std::vector<std::string> columns,
                            const std::vector<double>* weights);

  linalg::ColumnOp op = linalg::ColumnOp::kSource;
  /// Named numeric inputs: 1 for Source/Scale, 2 for Product, n for
  /// Combine.
  std::vector<std::string> inputs;
  double shift = 0.0;
  double divide = 1.0;
  const std::vector<double>* weights = nullptr;
};

/// A column-oriented table with a typed schema.
///
/// Columns are appended via AddNumericColumn / AddCategoricalColumn; all
/// columns must have equal length (checked). Row-subset operations
/// (Filter/Slice/Gather/Sample/PartitionBy) return zero-copy *views*:
/// the result shares the source's immutable column buffers and carries a
/// row-index selection vector, so a subset costs O(selected rows) index
/// entries, never a cell copy. Views are plain DataFrames — every
/// accessor resolves through the selection — and they keep the shared
/// buffers alive, so a view may outlive the frame it was taken from.
/// Materialize() flattens a view into owned contiguous buffers for the
/// rare caller that needs them (Concat does this internally).
class DataFrame {
 public:
  DataFrame() = default;

  /// Appends a numeric column. Fails if the name exists or the length
  /// disagrees with existing columns.
  Status AddNumericColumn(const std::string& name,
                          std::vector<double> values);

  /// Appends a categorical column under the same rules.
  Status AddCategoricalColumn(const std::string& name,
                              std::vector<std::string> values);

  /// Appends an already-built column (possibly sharing another frame's
  /// buffers) under the same rules.
  Status AddColumn(const std::string& name, Column column);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }

  /// Column lookup by name.
  StatusOr<const Column*> ColumnByName(const std::string& name) const;

  /// Numeric value at (row, column-name). Fails if the column is missing
  /// or categorical, or the row is out of range.
  StatusOr<double> NumericValue(size_t row, const std::string& name) const;

  /// Categorical value at (row, column-name).
  StatusOr<std::string> CategoricalValue(size_t row,
                                         const std::string& name) const;

  /// The numeric attributes of row `row`, in schema order of the numeric
  /// columns (the "tuple" the conformance machinery evaluates).
  linalg::Vector NumericRow(size_t row) const;

  /// All numeric columns as an n x m_N matrix (schema order).
  linalg::Matrix NumericMatrix() const;

  /// Selected columns (all must be numeric) as an n x k matrix.
  StatusOr<linalg::Matrix> NumericMatrixFor(
      const std::vector<std::string>& names) const;

  /// Selected columns restricted to the given rows (in the given order)
  /// as a rows.size() x k matrix. Row indices are validated up front
  /// (before any gathering). Cold callers only — hot kernels walk the
  /// zero-copy NumericViewFor instead.
  StatusOr<linalg::Matrix> NumericMatrixFor(
      const std::vector<std::string>& names,
      const std::vector<size_t>& rows) const;

  /// Selected columns (all must be numeric) as a non-owning n x k
  /// columnar view, built in O(k) without copying cell data — the
  /// zero-materialization twin of NumericMatrixFor for hot kernels
  /// (scoring, Gram accumulation). The view borrows this frame's
  /// buffers and selection vectors: it is valid only while this frame
  /// is alive and must not outlive it.
  StatusOr<linalg::MatrixView> NumericViewFor(
      const std::vector<std::string>& names) const;

  /// The row-subset variant: logical rows `rows` (in the given order,
  /// repeats allowed) of the selected columns, still O(k) and zero-copy
  /// — the per-case view the batched disjunctive scorer walks. Row
  /// indices are validated up front; the view additionally borrows
  /// `rows`, which must outlive it.
  StatusOr<linalg::MatrixView> NumericViewFor(
      const std::vector<std::string>& names,
      const std::vector<size_t>& rows) const;

  /// Deleted: a temporary row list would leave the returned view
  /// holding a dangling pointer (the view borrows `rows`, it does not
  /// copy it). Bind the rows to a named vector that outlives the view.
  StatusOr<linalg::MatrixView> NumericViewFor(
      const std::vector<std::string>& names,
      std::vector<size_t>&& rows) const = delete;

  /// A lazy n x exprs.size() view whose columns are the given
  /// expressions over this frame's numeric columns — scaling,
  /// polynomial terms, and projections composed without materializing
  /// anything. Still O(exprs + inputs) to build and zero-copy: derived
  /// cells are computed on demand by one CCS_NOINLINE kernel per op as
  /// kernels walk the view. Borrows this frame's buffers and any
  /// Combine weights; all must outlive the view.
  StatusOr<linalg::MatrixView> DerivedViewFor(
      const std::vector<ColumnExpr>& exprs) const;

  /// The row-subset variant (the per-partition / per-window case).
  /// Row indices are validated up front; the view additionally borrows
  /// `rows`, which must outlive it.
  StatusOr<linalg::MatrixView> DerivedViewFor(
      const std::vector<ColumnExpr>& exprs,
      const std::vector<size_t>& rows) const;

  /// Deleted for the same dangling-rows reason as NumericViewFor.
  StatusOr<linalg::MatrixView> DerivedViewFor(
      const std::vector<ColumnExpr>& exprs,
      std::vector<size_t>&& rows) const = delete;

  /// Names of numeric / categorical columns in schema order.
  std::vector<std::string> NumericNames() const;
  std::vector<std::string> CategoricalNames() const;

  /// Rows for which `predicate(row_index)` is true, as a zero-copy view.
  DataFrame Filter(const std::function<bool(size_t)>& predicate) const;

  /// Rows [begin, end), as a zero-copy view.
  DataFrame Slice(size_t begin, size_t end) const;

  /// The rows at `indices`, in the given order (repeats allowed), as a
  /// zero-copy view. Indices are logical rows of this frame (which may
  /// itself be a view; selections compose).
  DataFrame Gather(const std::vector<size_t>& indices) const;

  /// True when any column is a view (carries a selection vector).
  bool is_view() const;

  /// A frame with the same rows in owned, contiguous, selection-free
  /// buffers. Cheap (shared) when nothing is a view.
  DataFrame Materialize() const;

  /// `k` rows sampled uniformly without replacement; k is clamped to
  /// num_rows().
  DataFrame Sample(size_t k, Rng* rng) const;

  /// Row-wise concatenation; schemas must match exactly. The result is
  /// materialized (fresh flat buffers), never a view.
  StatusOr<DataFrame> Concat(const DataFrame& other) const;

  /// Splits on a categorical attribute: value -> sub-DataFrame view
  /// (paper §4.2 partitioning step). Groups on integer dictionary codes
  /// (no string hashing); each partition is a zero-copy view whose rows
  /// keep their original order. Fails if the attribute is not
  /// categorical.
  StatusOr<std::map<std::string, DataFrame>> PartitionBy(
      const std::string& attribute) const;

  /// A copy without the named columns (e.g. dropping the prediction
  /// target before constraint synthesis). Missing names are errors.
  StatusOr<DataFrame> DropColumns(const std::vector<std::string>& names) const;

  /// A copy with only the named columns, in the given order.
  StatusOr<DataFrame> SelectColumns(
      const std::vector<std::string>& names) const;

  /// Human-readable summary: per-column type, count, and basic stats.
  std::string Describe() const;

 private:
  Status CheckNewColumn(const std::string& name, size_t length) const;

  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace ccs::dataframe

#endif  // CCS_DATAFRAME_DATAFRAME_H_
