#include "dataframe/column.h"

#include <unordered_set>

namespace ccs::dataframe {

Column Column::Numeric(std::vector<double> values) {
  Column col(AttributeType::kNumeric);
  col.numeric_ = std::move(values);
  return col;
}

Column Column::Categorical(std::vector<std::string> values) {
  Column col(AttributeType::kCategorical);
  col.categorical_ = std::move(values);
  return col;
}

std::vector<std::string> Column::DistinctValues() const {
  CCS_CHECK(!is_numeric());
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const std::string& v : categorical_) {
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

Column Column::Gather(const std::vector<size_t>& indices) const {
  Column out(type_);
  if (is_numeric()) {
    out.numeric_.reserve(indices.size());
    for (size_t i : indices) {
      CCS_DCHECK(i < numeric_.size());
      out.numeric_.push_back(numeric_[i]);
    }
  } else {
    out.categorical_.reserve(indices.size());
    for (size_t i : indices) {
      CCS_DCHECK(i < categorical_.size());
      out.categorical_.push_back(categorical_[i]);
    }
  }
  return out;
}

}  // namespace ccs::dataframe
