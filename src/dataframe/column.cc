#include "dataframe/column.h"

#include <unordered_set>
#include <utility>

namespace ccs::dataframe {

uint32_t DictionaryBuilder::Intern(const std::string& value) {
  auto it = index_.find(value);
  if (it != index_.end()) return it->second;
  if (snapshot_taken_) {
    // A snapshot aliases the current vector; append into a clone so the
    // snapshot stays immutable. Codes are unchanged (append-only).
    values_ = std::make_shared<std::vector<std::string>>(*values_);
    snapshot_taken_ = false;
  }
  uint32_t code = static_cast<uint32_t>(values_->size());
  values_->push_back(value);
  index_.emplace(value, code);
  return code;
}

std::shared_ptr<const std::vector<std::string>> DictionaryBuilder::snapshot()
    const {
  snapshot_taken_ = true;
  return values_;
}

Column::Column(AttributeType type) : type_(type) {
  if (is_numeric()) {
    numeric_ = std::make_shared<std::vector<double>>();
  } else {
    codes_ = std::make_shared<std::vector<uint32_t>>();
    dictionary_ = std::make_shared<const std::vector<std::string>>();
  }
}

Column Column::Numeric(std::vector<double> values) {
  Column col(AttributeType::kNumeric);
  col.numeric_ = std::make_shared<std::vector<double>>(std::move(values));
  return col;
}

Column Column::Categorical(const std::vector<std::string>& values) {
  DictionaryBuilder dict;
  std::vector<uint32_t> codes;
  codes.reserve(values.size());
  for (const std::string& v : values) codes.push_back(dict.Intern(v));
  return CategoricalFromCodes(std::move(codes), dict.snapshot());
}

Column Column::CategoricalFromCodes(
    std::vector<uint32_t> codes,
    std::shared_ptr<const std::vector<std::string>> dictionary) {
  CCS_CHECK(dictionary != nullptr);
#ifndef NDEBUG
  for (uint32_t code : codes) CCS_DCHECK(code < dictionary->size());
  // Duplicate entries would break the code-identity == value-identity
  // assumption PartitionBy and DistinctValues group on.
  std::unordered_set<std::string> unique(dictionary->begin(),
                                         dictionary->end());
  CCS_DCHECK(unique.size() == dictionary->size());
#endif
  Column col(AttributeType::kCategorical);
  col.codes_ = std::make_shared<std::vector<uint32_t>>(std::move(codes));
  col.dictionary_ = std::move(dictionary);
  return col;
}

void Column::EnsureOwnedNumeric() {
  CCS_DCHECK(is_numeric());
  if (!selection_ && numeric_.use_count() == 1) return;
  auto owned = std::make_shared<std::vector<double>>();
  owned->reserve(size());
  for (size_t i = 0; i < size(); ++i) owned->push_back(NumericAt(i));
  numeric_ = std::move(owned);
  selection_ = nullptr;
}

void Column::EnsureOwnedCategorical() {
  CCS_DCHECK(!is_numeric());
  if (!selection_ && codes_.use_count() == 1) return;
  auto owned = std::make_shared<std::vector<uint32_t>>();
  owned->reserve(size());
  for (size_t i = 0; i < size(); ++i) owned->push_back(CodeAt(i));
  codes_ = std::move(owned);
  selection_ = nullptr;
}

void Column::AppendNumeric(double value) {
  CCS_DCHECK(is_numeric());
  EnsureOwnedNumeric();
  numeric_->push_back(value);
}

void Column::AppendCategorical(const std::string& value) {
  CCS_DCHECK(!is_numeric());
  EnsureOwnedCategorical();
  // The dictionary is immutable-shared; extend via clone when the value
  // is new. Appends are a cold path (tests, small fixture assembly) —
  // a linear dictionary scan keeps the column slim.
  for (uint32_t c = 0; c < dictionary_->size(); ++c) {
    if ((*dictionary_)[c] == value) {
      codes_->push_back(c);
      return;
    }
  }
  auto extended = std::make_shared<std::vector<std::string>>(*dictionary_);
  extended->push_back(value);
  codes_->push_back(static_cast<uint32_t>(dictionary_->size()));
  dictionary_ = std::move(extended);
}

linalg::Vector Column::ToVector() const {
  CCS_CHECK(is_numeric());
  if (!selection_) return linalg::Vector(*numeric_);
  std::vector<double> out;
  out.reserve(selection_->size());
  for (size_t phys : *selection_) out.push_back((*numeric_)[phys]);
  return linalg::Vector(std::move(out));
}

std::vector<std::string> Column::categorical_data() const {
  CCS_CHECK(!is_numeric());
  std::vector<std::string> out;
  out.reserve(size());
  for (size_t i = 0; i < size(); ++i) out.push_back(CategoricalAt(i));
  return out;
}

std::vector<std::string> Column::DistinctValues() const {
  CCS_CHECK(!is_numeric());
  std::vector<std::string> out;
  std::vector<bool> seen(dictionary_->size(), false);
  for (size_t i = 0; i < size(); ++i) {
    uint32_t code = CodeAt(i);
    if (!seen[code]) {
      seen[code] = true;
      out.push_back((*dictionary_)[code]);
    }
  }
  return out;
}

Column Column::Gather(const std::vector<size_t>& indices) const {
  auto physical = std::make_shared<std::vector<size_t>>();
  physical->reserve(indices.size());
  for (size_t i : indices) physical->push_back(PhysicalRow(i));
  Column out = *this;
  out.selection_ = std::move(physical);
  return out;
}

Column Column::WithSelection(
    std::shared_ptr<const std::vector<size_t>> selection) const {
#ifndef NDEBUG
  size_t physical_rows = is_numeric() ? numeric_->size() : codes_->size();
  for (size_t i : *selection) CCS_DCHECK(i < physical_rows);
#endif
  Column out = *this;
  out.selection_ = std::move(selection);
  return out;
}

Column Column::Materialize() const {
  if (!is_view()) return *this;
  if (is_numeric()) {
    std::vector<double> values;
    values.reserve(size());
    for (size_t phys : *selection_) values.push_back((*numeric_)[phys]);
    return Numeric(std::move(values));
  }
  std::vector<uint32_t> codes;
  codes.reserve(size());
  for (size_t phys : *selection_) codes.push_back((*codes_)[phys]);
  return CategoricalFromCodes(std::move(codes), dictionary_);
}

Column Column::Concat(const Column& a, const Column& b) {
  CCS_CHECK(a.type() == b.type());
  if (a.is_numeric()) {
    std::vector<double> values;
    values.reserve(a.size() + b.size());
    for (size_t i = 0; i < a.size(); ++i) values.push_back(a.NumericAt(i));
    for (size_t i = 0; i < b.size(); ++i) values.push_back(b.NumericAt(i));
    return Numeric(std::move(values));
  }
  std::vector<uint32_t> codes;
  codes.reserve(a.size() + b.size());
  if (a.dictionary_ == b.dictionary_) {
    // Shared dictionary (e.g. chunks from one CsvChunkReader): codes
    // concatenate verbatim.
    for (size_t i = 0; i < a.size(); ++i) codes.push_back(a.CodeAt(i));
    for (size_t i = 0; i < b.size(); ++i) codes.push_back(b.CodeAt(i));
    return CategoricalFromCodes(std::move(codes), a.dictionary_);
  }
  // Merge the dictionaries; both sides' codes are remapped through
  // per-dictionary-entry translation tables (O(|dicts| + rows)). With
  // unique dictionaries a's translation is the identity, but remapping
  // both sides keeps Concat correct on any range-valid input.
  DictionaryBuilder merged;
  std::vector<uint32_t> translate_a(a.dictionary_->size());
  for (uint32_t c = 0; c < a.dictionary_->size(); ++c) {
    translate_a[c] = merged.Intern((*a.dictionary_)[c]);
  }
  std::vector<uint32_t> translate_b(b.dictionary_->size());
  for (uint32_t c = 0; c < b.dictionary_->size(); ++c) {
    translate_b[c] = merged.Intern((*b.dictionary_)[c]);
  }
  for (size_t i = 0; i < a.size(); ++i) {
    codes.push_back(translate_a[a.CodeAt(i)]);
  }
  for (size_t i = 0; i < b.size(); ++i) {
    codes.push_back(translate_b[b.CodeAt(i)]);
  }
  return CategoricalFromCodes(std::move(codes), merged.snapshot());
}

}  // namespace ccs::dataframe
