// Typed column storage: a column is either all-numeric or all-categorical.
//
// Storage is columnar and shared: the numeric buffer, the categorical
// code buffer, and the categorical dictionary live behind shared_ptrs,
// so copying a Column (and every row-subset DataFrame operation built on
// it) never copies cell data. Categorical cells are dictionary-encoded —
// a uint32_t code per row into a per-column vector<string> dictionary,
// interned at construction (CSV parse time for loaded data) — so
// grouping and partitioning compare integers instead of hashing strings.
//
// A Column may additionally carry a row-index *selection vector*: a
// shared list of physical row indices that makes the column a zero-copy
// view of `selection.size()` logical rows over the same buffers. All
// logical accessors (NumericAt, CategoricalAt, CodeAt, size) resolve
// through the selection; Materialize() flattens a view back into owned
// contiguous buffers for the rare caller that needs them.

#ifndef CCS_DATAFRAME_COLUMN_H_
#define CCS_DATAFRAME_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "dataframe/schema.h"
#include "linalg/vector.h"

namespace ccs::dataframe {

/// Interns strings into a growing dictionary with copy-on-write
/// snapshots: snapshot() hands out the current dictionary as a shared
/// immutable vector, and a later Intern of a *new* value clones the
/// dictionary instead of mutating what the snapshots alias. Codes are
/// stable across snapshots (the dictionary only ever appends), so codes
/// produced against an older snapshot stay valid against newer ones.
class DictionaryBuilder {
 public:
  DictionaryBuilder() : values_(std::make_shared<std::vector<std::string>>()) {}

  // Move-only: a copy would alias the same dictionary vector behind two
  // diverging index maps, letting interleaved Interns append duplicate
  // entries and break the code==value identity invariant.
  DictionaryBuilder(const DictionaryBuilder&) = delete;
  DictionaryBuilder& operator=(const DictionaryBuilder&) = delete;
  DictionaryBuilder(DictionaryBuilder&&) = default;
  DictionaryBuilder& operator=(DictionaryBuilder&&) = default;

  /// The code of `value`, interning it on first sight.
  uint32_t Intern(const std::string& value);

  /// The current dictionary as a shared immutable snapshot.
  std::shared_ptr<const std::vector<std::string>> snapshot() const;

  size_t size() const { return values_->size(); }

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::shared_ptr<std::vector<std::string>> values_;
  mutable bool snapshot_taken_ = false;
};

/// A single column of a DataFrame.
///
/// Stores doubles for numeric columns and dictionary codes for
/// categorical ones; exactly one representation is in use, selected by
/// type(). Copies are O(1) (shared buffers).
class Column {
 public:
  /// An empty column of the given type.
  explicit Column(AttributeType type);

  /// A numeric column adopting `values`.
  static Column Numeric(std::vector<double> values);

  /// A categorical column interning `values` (dictionary in
  /// first-appearance order).
  static Column Categorical(const std::vector<std::string>& values);

  /// A categorical column adopting pre-encoded codes. Every code must be
  /// < dictionary->size() and dictionary entries must be unique (both
  /// checked in debug builds) — consumers rely on code identity implying
  /// value identity. DictionaryBuilder guarantees uniqueness.
  static Column CategoricalFromCodes(
      std::vector<uint32_t> codes,
      std::shared_ptr<const std::vector<std::string>> dictionary);

  AttributeType type() const { return type_; }
  bool is_numeric() const { return type_ == AttributeType::kNumeric; }

  /// True when this column is a zero-copy view (has a selection vector).
  bool is_view() const { return selection_ != nullptr; }

  /// Logical rows (selection size for views, buffer size otherwise).
  size_t size() const {
    if (selection_) return selection_->size();
    return is_numeric() ? numeric_->size() : codes_->size();
  }

  /// Numeric element access (logical row). Requires is_numeric().
  double NumericAt(size_t i) const {
    CCS_DCHECK(is_numeric());
    return (*numeric_)[PhysicalRow(i)];
  }

  /// Categorical element access (logical row). Requires !is_numeric().
  const std::string& CategoricalAt(size_t i) const {
    CCS_DCHECK(!is_numeric());
    return (*dictionary_)[(*codes_)[PhysicalRow(i)]];
  }

  /// Dictionary code of a categorical cell (logical row).
  uint32_t CodeAt(size_t i) const {
    CCS_DCHECK(!is_numeric());
    return (*codes_)[PhysicalRow(i)];
  }

  /// Appends to a numeric column. Detaches (copies) shared or viewed
  /// storage first, so existing views of this column are unaffected.
  void AppendNumeric(double value);

  /// Appends to a categorical column under the same detach rule.
  void AppendCategorical(const std::string& value);

  /// The column as a linalg::Vector copy (gathered through the selection
  /// for views). Requires is_numeric().
  linalg::Vector ToVector() const;

  /// The contiguous numeric buffer, zero-copy. Requires is_numeric() and
  /// !is_view() — views have no contiguous buffer; Materialize() first.
  const std::vector<double>& numeric_data() const {
    CCS_DCHECK(is_numeric());
    CCS_CHECK(!is_view());
    return *numeric_;
  }

  /// The categorical cells decoded to strings (always a copy — stored
  /// data is dictionary codes). Requires !is_numeric().
  std::vector<std::string> categorical_data() const;

  /// The dictionary of a categorical column (physical codes index it).
  const std::vector<std::string>& dictionary() const {
    CCS_DCHECK(!is_numeric());
    return *dictionary_;
  }

  const std::shared_ptr<const std::vector<std::string>>& shared_dictionary()
      const {
    CCS_DCHECK(!is_numeric());
    return dictionary_;
  }

  /// Physical (pre-selection) buffers, for one-pass gather kernels.
  const std::vector<double>& numeric_buffer() const {
    CCS_DCHECK(is_numeric());
    return *numeric_;
  }
  const std::vector<uint32_t>& code_buffer() const {
    CCS_DCHECK(!is_numeric());
    return *codes_;
  }

  /// The selection vector, or nullptr for a flat column.
  const std::vector<size_t>* selection() const { return selection_.get(); }

  /// Distinct values, in first-appearance order of the logical rows.
  std::vector<std::string> DistinctValues() const;

  /// A zero-copy view containing logical rows[i] for each i in `indices`.
  Column Gather(const std::vector<size_t>& indices) const;

  /// A view of this column's *physical* rows given by `selection`,
  /// replacing any current selection — the building block DataFrame uses
  /// to share one composed selection across columns. The caller is
  /// responsible for having composed `selection` through this column's
  /// current selection (Gather does); every entry must index the
  /// physical buffer.
  Column WithSelection(
      std::shared_ptr<const std::vector<size_t>> selection) const;

  /// A flat column owning contiguous copies of the logical rows. No-op
  /// (shared, no copy) when already flat.
  Column Materialize() const;

  /// Row-wise concatenation of two columns of the same type. The result
  /// is flat; dictionaries are merged (b's codes are re-interned into
  /// a's dictionary when they differ).
  static Column Concat(const Column& a, const Column& b);

 private:
  size_t PhysicalRow(size_t i) const {
    CCS_DCHECK(i < size());
    return selection_ ? (*selection_)[i] : i;
  }

  // Detaches shared/viewed storage so in-place mutation is safe.
  void EnsureOwnedNumeric();
  void EnsureOwnedCategorical();

  AttributeType type_;
  std::shared_ptr<std::vector<double>> numeric_;             // kNumeric
  std::shared_ptr<std::vector<uint32_t>> codes_;             // kCategorical
  std::shared_ptr<const std::vector<std::string>> dictionary_;
  std::shared_ptr<const std::vector<size_t>> selection_;     // null = flat
};

}  // namespace ccs::dataframe

#endif  // CCS_DATAFRAME_COLUMN_H_
