// Typed column storage: a column is either all-numeric or all-categorical.

#ifndef CCS_DATAFRAME_COLUMN_H_
#define CCS_DATAFRAME_COLUMN_H_

#include <string>
#include <vector>

#include "common/logging.h"
#include "dataframe/schema.h"
#include "linalg/vector.h"

namespace ccs::dataframe {

/// A single column of a DataFrame.
///
/// Stores doubles for numeric columns and strings for categorical ones;
/// exactly one of the two buffers is in use, selected by type().
class Column {
 public:
  /// An empty column of the given type.
  explicit Column(AttributeType type) : type_(type) {}

  /// A numeric column adopting `values`.
  static Column Numeric(std::vector<double> values);

  /// A categorical column adopting `values`.
  static Column Categorical(std::vector<std::string> values);

  AttributeType type() const { return type_; }
  bool is_numeric() const { return type_ == AttributeType::kNumeric; }

  size_t size() const {
    return is_numeric() ? numeric_.size() : categorical_.size();
  }

  /// Numeric element access. Requires is_numeric().
  double NumericAt(size_t i) const {
    CCS_DCHECK(is_numeric());
    return numeric_[i];
  }

  /// Categorical element access. Requires !is_numeric().
  const std::string& CategoricalAt(size_t i) const {
    CCS_DCHECK(!is_numeric());
    return categorical_[i];
  }

  /// Appends to a numeric column.
  void AppendNumeric(double value) {
    CCS_DCHECK(is_numeric());
    numeric_.push_back(value);
  }

  /// Appends to a categorical column.
  void AppendCategorical(std::string value) {
    CCS_DCHECK(!is_numeric());
    categorical_.push_back(std::move(value));
  }

  /// The numeric buffer as a linalg::Vector copy. Requires is_numeric().
  linalg::Vector ToVector() const {
    CCS_CHECK(is_numeric());
    return linalg::Vector(numeric_);
  }

  const std::vector<double>& numeric_data() const {
    CCS_DCHECK(is_numeric());
    return numeric_;
  }
  const std::vector<std::string>& categorical_data() const {
    CCS_DCHECK(!is_numeric());
    return categorical_;
  }

  /// Distinct values of a categorical column, in first-appearance order.
  std::vector<std::string> DistinctValues() const;

  /// A new column containing rows[i] for each i in `indices`.
  Column Gather(const std::vector<size_t>& indices) const;

 private:
  AttributeType type_;
  std::vector<double> numeric_;
  std::vector<std::string> categorical_;
};

}  // namespace ccs::dataframe

#endif  // CCS_DATAFRAME_COLUMN_H_
