#!/usr/bin/env python3
"""ccs_lint: the determinism-contract linter for the CCSynth tree.

The determinism contract (docs/architecture.md) promises bitwise-equal
results at any thread count. That only holds while floating-point
accumulation stays in single compiled kernels, threads are spawned in
one place, and shared state is visibly lock-guarded. This linter makes
those conventions machine-checked; CI runs it in the `lint` job.

Rules
-----
  fp-accumulate    `+=`/`-=` accumulation on floating-point state inside
                   a `for` loop, outside a blessed kernel. Blessed:
                   function bodies marked CCS_NOINLINE, and
                   `namespace internal` blocks under src/linalg.
  kernel-noinline  a function in `namespace internal` of src/linalg
                   (the blessed FP-kernel namespace) missing
                   CCS_NOINLINE — both declarations and definitions.
  thread-spawn     `std::thread` outside src/common/parallel.{h,cc}.
                   Work belongs on the shared pool; a direct spawn that
                   must exist (e.g. a long-lived pipeline stage) needs
                   an explained allow.
  std-mutex        raw std::mutex / condition_variable / lock adapters
                   outside src/common/mutex.h. Clang's thread-safety
                   analysis only sees the annotated wrappers
                   (common::Mutex / MutexLock / CondVar).
  rng-parallel     an Rng mentioned in a file that also dispatches
                   parallel work (ParallelFor/ParallelForEach/
                   std::thread). Rng is thread-affine: sharing one
                   across lanes (or drawing from lane-local ones in a
                   nondeterministic order) breaks seed discipline —
                   byte-replayable streams in src/scenario depend on
                   it. Split the randomness out of the parallel file,
                   or explain the partitioning with an allow.
  guarded-by       a class holding a Mutex by value whose other data
                   members carry neither CCS_GUARDED_BY nor an exemption
                   (const, static, Mutex/CondVar, std::atomic).
  wall-clock       a wall-clock read (steady_clock / system_clock /
                   high_resolution_clock) in src/ outside src/obs/.
                   Clocks are observability-only: obs::NowNanos() is the
                   sanctioned entry point, and nothing a kernel computes
                   may depend on time (docs/observability.md).
  matrix-materialize
                   a NumericMatrixFor call under src/core/ or
                   src/stream/ — the hot synthesize→score layers. Those
                   paths walk zero-copy NumericViewFor / DerivedViewFor
                   views (docs/architecture.md, "Derived columns"); a
                   materialized per-call Matrix there reintroduces the
                   allocations the view layer exists to eliminate.
                   Genuinely cold callers (explain, repair) carry an
                   explained allow.
  fault-point      a CCS_FAULT_POINT whose name is not an inline string
                   literal, duplicates another site's name (in the same
                   file or anywhere in the tree — hit ordinals identify
                   exactly one site; see common/fault.h), or lives
                   outside src/ (fault points belong in production
                   stage code, not tests or tools). Cross-file
                   duplicates cannot be allowed — rename the point.
  bad-allow        an allow comment with no reason, or naming an
                   unknown rule.
  unused-allow     an allow comment that suppressed nothing — stale
                   suppressions must not outlive the code they excused.

Escape hatch
------------
Every suppression must carry a reason:

    // ccs-lint: allow(<rule>): <reason>          this or the next line
    // ccs-lint: allow-file(<rule>): <reason>     the whole file

Usage
-----
    tools/ccs_lint.py                 lint src/** under the repo root
    tools/ccs_lint.py --self-test     prove each rule on its fixture
    tools/ccs_lint.py FILE...         lint specific files
    tools/ccs_lint.py --list-allows   also print active suppressions

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

RULES = (
    "fp-accumulate",
    "kernel-noinline",
    "thread-spawn",
    "std-mutex",
    "rng-parallel",
    "guarded-by",
    "wall-clock",
    "matrix-materialize",
    "fault-point",
    "bad-allow",
    "unused-allow",
)

# Files owning a concurrency primitive are exempt from the rule that
# bans using it elsewhere.
THREAD_SPAWN_FILES = ("src/common/parallel.h", "src/common/parallel.cc")
STD_MUTEX_FILES = ("src/common/mutex.h",)
GUARDED_BY_EXEMPT_FILES = ("src/common/mutex.h",)
# Rng's own definition, and the pool that Rng must stay away from.
RNG_PARALLEL_EXEMPT_FILES = ("src/common/random.h", "src/common/random.cc",
                             "src/common/parallel.h", "src/common/parallel.cc")
# The macro's own definition (its parameter is, of course, not a literal).
FAULT_POINT_EXEMPT_FILES = ("src/common/fault.h",)

ALLOW_RE = re.compile(
    r"//\s*ccs-lint:\s*(allow|allow-file)\(([\w-]+)\)(?::\s*(\S.*))?")
FIXTURE_PATH_RE = re.compile(r"//\s*ccs-lint-fixture-path:\s*(\S+)")
EXPECT_RE = re.compile(r"EXPECT-LINT:\s*([\w-]+)")

STD_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock)\b")
THREAD_RE = re.compile(r"\bstd::thread\b")
WALL_CLOCK_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\b")
RNG_RE = re.compile(r"\b(?:ccs::)?(?:common::)?Rng\b")
PARALLEL_DISPATCH_RE = re.compile(
    r"\bParallelFor(?:Each)?\b|\bstd::thread\b")
ACCUM_RE = re.compile(r"(?P<lhs>[^;{}=!<>+\-]{1,120}?)(?:\+|-)=(?P<rhs>[^;]*);")
DOUBLE_DECL_RE = re.compile(
    r"^\s*(?:const\s+)?(?:double|float)\s+(\w+)\s*(?:=|;|\{)")
CLASS_RE = re.compile(r"^\s*(?:class|struct)\s+\w")
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:ccs::)?(?:common::)?(?:Mutex|std::mutex)\s+\w+\s*;")
MEMBER_EXEMPT_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:static\s|const\s|constexpr\s|"
    r"(?:ccs::)?(?:common::)?Mutex\b|(?:ccs::)?(?:common::)?CondVar\b|"
    r"std::atomic\b|std::mutex\b|std::condition_variable)")
MEMBER_SKIP_RE = re.compile(
    r"^\s*(?:public:|private:|protected:|friend\s|using\s|typedef\s|"
    r"static_assert\b|template\s*<)")
SIGNATURE_RE = re.compile(r"^\s*[A-Za-z_][\w:<>,*&\s]*\b\w+\s*\(")
FAULT_POINT_CALL_RE = re.compile(r"\bCCS_FAULT_POINT\s*\(")
MATRIX_MATERIALIZE_RE = re.compile(r"\bNumericMatrixFor\s*\(")
FAULT_POINT_LITERAL_RE = re.compile(r'\bCCS_FAULT_POINT\s*\(\s*"([^"]+)"\s*\)')


class Allow:
    def __init__(self, rule, line, file_wide, reason):
        self.rule = rule
        self.line = line  # 1-based line of the comment.
        self.file_wide = file_wide
        self.reason = reason
        self.hits = 0


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(lines):
    """Returns lines with comments and string/char literals blanked.

    Newlines are preserved so line numbers survive; literal contents are
    replaced with spaces so column-ish heuristics stay roughly aligned.
    """
    out = []
    in_block = False
    for raw in lines:
        buf = []
        i, n = 0, len(raw)
        state = "block" if in_block else "code"
        while i < n:
            c = raw[i]
            nxt = raw[i + 1] if i + 1 < n else ""
            if state == "code":
                if c == "/" and nxt == "/":
                    buf.append(" " * (n - i))
                    i = n
                elif c == "/" and nxt == "*":
                    state = "block"
                    buf.append("  ")
                    i += 2
                elif c == '"':
                    state = "string"
                    buf.append(" ")
                    i += 1
                elif c == "'":
                    state = "char"
                    buf.append(" ")
                    i += 1
                else:
                    buf.append(c)
                    i += 1
            elif state == "block":
                if c == "*" and nxt == "/":
                    state = "code"
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
            else:  # string / char
                if c == "\\":
                    buf.append("  ")
                    i += 2
                elif (state == "string" and c == '"') or (
                        state == "char" and c == "'"):
                    state = "code"
                    buf.append(" ")
                    i += 1
                else:
                    buf.append(" ")
                    i += 1
        in_block = state == "block"
        out.append("".join(buf))
    return out


class FileLinter:
    """Single-pass, brace-tracking linter for one translation unit."""

    def __init__(self, path, logical_path, raw_lines):
        self.path = path
        # Path used for rule scoping; differs from `path` for fixtures.
        self.logical = logical_path.replace(os.sep, "/")
        self.raw = raw_lines
        self.code = strip_comments_and_strings(raw_lines)
        self.findings = []
        self.allows = []
        # (line, name) of every well-formed fault point, for the
        # cross-file uniqueness check in main().
        self.fault_points = []
        self.file_allows = {}  # rule -> Allow
        self.line_allows = {}  # (rule, target line) -> Allow
        self._collect_allows()

    # ---------------------------------------------------------- allows

    def _collect_allows(self):
        for idx, raw in enumerate(self.raw, start=1):
            m = ALLOW_RE.search(raw)
            if not m:
                if "ccs-lint:" in raw:
                    self._report(idx, "bad-allow",
                                 "malformed ccs-lint comment (expected "
                                 "'ccs-lint: allow(<rule>): <reason>')",
                                 allowable=False)
                continue
            kind, rule, reason = m.group(1), m.group(2), m.group(3)
            if rule not in RULES:
                self._report(idx, "bad-allow",
                             f"allow names unknown rule '{rule}'",
                             allowable=False)
                continue
            if not reason or not reason.strip():
                self._report(idx, "bad-allow",
                             f"allow({rule}) has no reason — every "
                             "suppression must explain itself",
                             allowable=False)
                continue
            allow = Allow(rule, idx, kind == "allow-file", reason.strip())
            self.allows.append(allow)
            if allow.file_wide:
                self.file_allows[rule] = allow
            else:
                # Trailing allow covers its own line; a standalone
                # comment covers the next code line (skipping the rest
                # of its own comment block).
                self.line_allows[(rule, idx)] = allow
                if not self.code[idx - 1].strip():
                    for j in range(idx + 1, min(idx + 12, len(self.raw) + 1)):
                        if self.code[j - 1].strip():
                            self.line_allows[(rule, j)] = allow
                            break

    def _report(self, line, rule, message, allowable=True):
        if allowable:
            allow = self.line_allows.get((rule, line))
            if allow is not None:
                allow.hits += 1
                return
            allow = self.file_allows.get(rule)
            if allow is not None:
                allow.hits += 1
                return
        self.findings.append(Finding(self.path, line, rule, message))

    def _flag_unused_allows(self):
        for allow in self.allows:
            if allow.hits == 0:
                self.findings.append(Finding(
                    self.path, allow.line, "unused-allow",
                    f"allow({allow.rule}) suppresses nothing — remove it"))

    # ------------------------------------------------------------ main

    def run(self):
        self._lint_tokens()
        self._lint_structure()
        self._lint_fault_points()
        self._flag_unused_allows()
        return self.findings

    def _lint_fault_points(self):
        if self.logical.endswith(FAULT_POINT_EXEMPT_FILES):
            return
        seen = {}  # name -> first line in this file.
        for idx, line in enumerate(self.code, start=1):
            if not FAULT_POINT_CALL_RE.search(line):
                continue
            m = FAULT_POINT_LITERAL_RE.search(self.raw[idx - 1])
            if not m:
                self._report(idx, "fault-point",
                             "CCS_FAULT_POINT name must be an inline string "
                             "literal — the fault-spec grammar and the "
                             "uniqueness check index sites by text")
                continue
            name = m.group(1)
            if not self.logical.startswith("src/"):
                self._report(idx, "fault-point",
                             f'CCS_FAULT_POINT("{name}") outside src/ — '
                             "fault points belong in production stage code, "
                             "not tests or tools")
                continue
            if name in seen:
                self._report(idx, "fault-point",
                             f'duplicate fault point "{name}" (first at '
                             f"line {seen[name]}) — hit ordinals must "
                             "identify exactly one site")
                continue
            seen[name] = idx
            self.fault_points.append((idx, name))

    def _lint_tokens(self):
        spawn_ok = self.logical.endswith(THREAD_SPAWN_FILES)
        mutex_ok = self.logical.endswith(STD_MUTEX_FILES)
        rng_ok = self.logical.endswith(RNG_PARALLEL_EXEMPT_FILES)
        # Clocks are confined to the observability layer; bench/ and
        # tools/ are outside the default scan and exempt by path.
        clock_banned = (self.logical.startswith("src/")
                        and not self.logical.startswith("src/obs/"))
        # Materialized numeric matrices are banned in the hot
        # synthesize→score layers; dataframe/ owns the method and the
        # cold layers (explain/repair live in core and carry allows).
        matrix_banned = self.logical.startswith(("src/core/", "src/stream/"))
        # Rng thread-affinity: the rule arms once the file dispatches
        # parallel work anywhere — Rng in such a file needs an explained
        # partitioning (one Rng per lane, deterministic stream split).
        has_parallel = any(
            PARALLEL_DISPATCH_RE.search(line) for line in self.code)
        for idx, line in enumerate(self.code, start=1):
            if not spawn_ok and THREAD_RE.search(line):
                self._report(idx, "thread-spawn",
                             "std::thread outside common/parallel — route "
                             "work through the shared pool")
            if not mutex_ok and STD_MUTEX_RE.search(line):
                self._report(idx, "std-mutex",
                             "raw std:: synchronization primitive — use "
                             "common::Mutex/MutexLock/CondVar so Clang's "
                             "thread-safety analysis can see the lock")
            if clock_banned and WALL_CLOCK_RE.search(line):
                self._report(idx, "wall-clock",
                             "wall-clock read outside src/obs — time is "
                             "observability-only; route out-of-band "
                             "measurement through obs::NowNanos()")
            if matrix_banned and MATRIX_MATERIALIZE_RE.search(line):
                self._report(idx, "matrix-materialize",
                             "NumericMatrixFor in a hot synthesize/score "
                             "layer — walk NumericViewFor/DerivedViewFor "
                             "views instead, or explain why this caller is "
                             "cold")
            if not rng_ok and has_parallel and RNG_RE.search(line):
                self._report(idx, "rng-parallel",
                             "Rng in a file that dispatches parallel work — "
                             "Rng is thread-affine; keep randomness out of "
                             "parallel files or explain the per-lane "
                             "partitioning")

    def _lint_structure(self):
        in_linalg = "/linalg/" in "/" + self.logical
        depth = 0
        # Stacks of depths-at-entry for contexts closed by '}'.
        for_stack = []
        blessed_stack = []  # CCS_NOINLINE bodies + linalg internal ns.
        class_stack = []  # [depth, has_mutex, [(line, stripped, raw)]]
        doubles = set()
        pending_noinline = False
        pending_for = False  # `for (...)` header seen, body not entered.
        in_ns_decl_pending = False
        prev_end = ";"  # Last code char of the previous non-blank line.

        for idx, line in enumerate(self.code, start=1):
            raw = self.raw[idx - 1]
            stripped = line.strip()
            body_was_pending = pending_for

            m = DOUBLE_DECL_RE.match(line)
            if m:
                doubles.add(m.group(1))

            if "CCS_NOINLINE" in line:
                pending_noinline = True
            if in_linalg and re.search(r"\bnamespace\s+internal\b", line):
                in_ns_decl_pending = True
                if "{" in line:
                    blessed_stack.append(("ns", depth))
                    in_ns_decl_pending = False

            # Parse a `for (...)` header: find the matching close paren,
            # then decide whether the body is a brace block (the char
            # loop below pushes it), a single statement on this line, or
            # the next statement line.
            has_for = False
            for_close = -1
            fm = re.search(r"\bfor\s*\(", line)
            if fm:
                has_for = True
                paren = 0
                for j in range(fm.end() - 1, len(line)):
                    if line[j] == "(":
                        paren += 1
                    elif line[j] == ")":
                        paren -= 1
                        if paren == 0:
                            for_close = j
                            break
                rest = line[for_close + 1:] if for_close >= 0 else ""
                if for_close < 0 or not rest.strip() or "{" in rest:
                    pending_for = True  # Body opens on this/later line.

            # kernel-noinline: function signatures inside the blessed
            # namespace must carry the macro (on this or the 2 lines
            # above, for multi-line signatures following one).
            in_internal_ns = any(kind == "ns" for kind, _ in blessed_stack)
            ns_depth = next(
                (d for kind, d in blessed_stack if kind == "ns"), None)
            if (in_internal_ns and depth == ns_depth + 1
                    and SIGNATURE_RE.match(line)
                    and not re.match(r"\s*(?:namespace|using|typedef)\b",
                                     line)):
                window = "".join(self.code[max(0, idx - 3):idx])
                if "CCS_NOINLINE" not in window:
                    self._report(
                        idx, "kernel-noinline",
                        "linalg::internal kernel missing CCS_NOINLINE — "
                        "the contract requires one compiled copy of every "
                        "FP inner loop")

            # fp-accumulate.
            blessed = any(kind == "fn" for kind, _ in blessed_stack) or \
                in_internal_ns
            in_block_for = bool(for_stack) or body_was_pending
            if (in_block_for or has_for) and not blessed:
                for acc in ACCUM_RE.finditer(line):
                    lhs = acc.group("lhs").strip()
                    rhs = acc.group("rhs")
                    if not in_block_for and acc.start("rhs") <= for_close:
                        continue  # `x += 1` inside the for header itself.
                    # The captured lhs may drag in tail text of the for
                    # header; the accumulator is its final bare
                    # identifier (none if lhs ends in ']', ')', '.').
                    tail = re.search(r"(?:^|[\s);(])(\w+)\s*$", lhs)
                    if "*" in rhs:
                        self._report(
                            idx, "fp-accumulate",
                            "multiply-accumulate in a for loop outside a "
                            "blessed kernel — move it into a CCS_NOINLINE "
                            "kernel or explain why it cannot diverge")
                    elif tail and tail.group(1) in doubles:
                        self._report(
                            idx, "fp-accumulate",
                            f"floating-point reduction into "
                            f"'{tail.group(1)}' in a for loop outside a "
                            "blessed kernel")

            # guarded-by member collection. Declarations may span lines;
            # join until the terminating `;`. Anything opening or
            # closing a scope (inline method bodies, nested types) drops
            # the partial statement.
            if class_stack and depth == class_stack[-1][0] + 1:
                entry = class_stack[-1]
                if MUTEX_MEMBER_RE.match(line):
                    entry[1] = True
                if "{" in line or "}" in line:
                    entry[3] = entry[4] = ""
                elif stripped:
                    if entry[3] or not MEMBER_SKIP_RE.match(line):
                        entry[3] = (entry[3] + " " + stripped).strip()
                        entry[4] = (entry[4] + " " + raw.strip()).strip()
                        if stripped.endswith(";"):
                            entry[2].append((idx, entry[3], entry[4]))
                            entry[3] = entry[4] = ""

            if CLASS_RE.match(line) and line.rstrip().endswith("{") \
                    and ";" not in line:
                class_stack.append([depth, False, [], "", ""])
                in_ns_decl_pending = False

            # Brace bookkeeping (and for/noinline body entry), per char.
            for ch in line:
                if ch == ";" and pending_noinline:
                    pending_noinline = False  # Declaration only.
                if ch == "{":
                    if pending_noinline:
                        blessed_stack.append(("fn", depth))
                        pending_noinline = False
                    elif in_ns_decl_pending:
                        blessed_stack.append(("ns", depth))
                        in_ns_decl_pending = False
                    elif pending_for:
                        for_stack.append(depth)
                        pending_for = False
                    depth += 1
                elif ch == "}":
                    depth -= 1
                    if for_stack and for_stack[-1] == depth:
                        for_stack.pop()
                    if blessed_stack and blessed_stack[-1][1] == depth:
                        blessed_stack.pop()
                    if class_stack and class_stack[-1][0] == depth:
                        self._check_class(class_stack.pop())

            # A single-statement body consumed the pending for header.
            if body_was_pending and pending_for and stripped \
                    and "{" not in line:
                pending_for = False
            if stripped:
                prev_end = stripped[-1]

    def _check_class(self, entry):
        _, has_mutex, members = entry[0], entry[1], entry[2]
        if not has_mutex:
            return
        if self.logical.endswith(GUARDED_BY_EXEMPT_FILES):
            return
        for line_no, code_line, raw_line in members:
            if MUTEX_MEMBER_RE.match(code_line):
                continue
            # A leading const only makes the member immutable when it is
            # not a pointer declarator (const T* p is a mutable pointer).
            if MEMBER_EXEMPT_RE.match(code_line) and not (
                    code_line.lstrip().startswith(("const ", "mutable const "))
                    and "*" in code_line):
                continue
            # Drop annotation macros and template argument lists, then
            # anything still holding parens is a function declaration.
            flat = re.sub(r"CCS_\w+\s*\([^()]*\)", "", code_line)
            prev = None
            while prev != flat:
                prev = flat
                flat = re.sub(r"<[^<>]*>", "", flat)
            if "(" in flat:
                continue
            if "=" in flat.split(";")[0] and not re.search(
                    r"\w\s+\w", flat.split("=")[0].strip()):
                continue  # Not a declaration (assignment expression).
            if "CCS_GUARDED_BY" in raw_line or "CCS_PT_GUARDED_BY" in raw_line:
                continue
            self._report(
                line_no, "guarded-by",
                "member of a mutex-holding class lacks CCS_GUARDED_BY — "
                "annotate it, make it const/atomic, or explain why it "
                "needs no lock")


def lint_file(path, logical_path=None):
    with open(path, encoding="utf-8") as f:
        raw = f.read().splitlines()
    logical = logical_path
    if logical is None:
        logical = path
        for line in raw[:5]:
            m = FIXTURE_PATH_RE.search(line)
            if m:
                logical = m.group(1)
                break
    linter = FileLinter(path, logical, raw)
    findings = linter.run()
    return findings, linter.allows, linter.fault_points


def default_targets(root):
    targets = []
    for dirpath, _, filenames in os.walk(os.path.join(root, "src")):
        for name in sorted(filenames):
            if name.endswith((".h", ".cc")):
                targets.append(os.path.join(dirpath, name))
    return sorted(targets)


def run_self_test(root):
    """Each fixture declares its expected findings with EXPECT-LINT
    markers; the linter must produce exactly those, no more, no less."""
    fixture_dir = os.path.join(root, "tools", "lint_fixtures")
    fixtures = sorted(
        os.path.join(fixture_dir, f)
        for f in os.listdir(fixture_dir) if f.endswith(".cc"))
    if not fixtures:
        print("self-test: no fixtures found", file=sys.stderr)
        return 2
    failures = 0
    rules_proven = set()
    for path in fixtures:
        with open(path, encoding="utf-8") as f:
            raw = f.read().splitlines()
        expected = set()
        for idx, line in enumerate(raw, start=1):
            for m in EXPECT_RE.finditer(line):
                expected.add((idx, m.group(1)))
        findings, _, _ = lint_file(path)
        got = {(f.line, f.rule) for f in findings}
        if got != expected:
            failures += 1
            print(f"self-test FAIL: {os.path.relpath(path, root)}")
            for line_no, rule in sorted(expected - got):
                print(f"  missing: line {line_no} [{rule}]")
            for line_no, rule in sorted(got - expected):
                finding = next(f for f in findings
                               if (f.line, f.rule) == (line_no, rule))
                print(f"  unexpected: {finding}")
        rules_proven.update(rule for _, rule in expected)
    unproven = set(RULES) - rules_proven
    if unproven:
        failures += 1
        print("self-test FAIL: no fixture proves rule(s): "
              + ", ".join(sorted(unproven)))
    if failures:
        return 1
    print(f"self-test OK: {len(fixtures)} fixtures, "
          f"all {len(RULES)} rules proven")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: src/** under --root)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the seeded fixtures and verify every "
                             "rule fires exactly where expected")
    parser.add_argument("--list-allows", action="store_true",
                        help="print every active suppression and its reason")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if args.self_test:
        return run_self_test(root)

    targets = args.paths or default_targets(root)
    if not targets:
        print("ccs_lint: nothing to lint", file=sys.stderr)
        return 2

    all_findings = []
    all_allows = []
    site_index = {}  # fault-point name -> (path, line) of first sighting.
    for path in targets:
        findings, allows, fault_points = lint_file(
            path, logical_path=os.path.relpath(os.path.abspath(path), root))
        all_findings.extend(findings)
        all_allows.extend((path, a) for a in allows)
        for line, name in fault_points:
            if name in site_index:
                first_path, first_line = site_index[name]
                all_findings.append(Finding(
                    path, line, "fault-point",
                    f'duplicate fault point "{name}" — already defined at '
                    f"{first_path}:{first_line}; names are global, pick a "
                    "new one"))
            else:
                site_index[name] = (path, line)

    for finding in all_findings:
        print(finding)
    if args.list_allows:
        for path, allow in all_allows:
            scope = "file" if allow.file_wide else "line"
            print(f"allow: {path}:{allow.line} [{allow.rule}] ({scope}) "
                  f"{allow.reason}")
    suppressed = sum(a.hits for _, a in all_allows)
    print(f"ccs_lint: {len(targets)} files, {len(all_findings)} finding(s), "
          f"{suppressed} suppressed by {len(all_allows)} allow(s)")
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
