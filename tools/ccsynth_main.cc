// ccsynth — command-line front end for the conformance-constraint library.
//
// Subcommands:
//   ccsynth learn   <train.csv> [-o constraints.ccs] [--no-disjunctive]
//                   [--bound-multiplier C] [--sql] [--pretty]
//       Discover constraints from a CSV and write them to disk.
//   ccsynth check   <constraints.ccs> <serving.csv> [--threshold T]
//       Score every serving tuple; print per-tuple violations and the
//       unsafe fraction (exit code 2 if any tuple exceeds the threshold).
//   ccsynth drift   <reference.csv> <window.csv> [<window.csv> ...]
//       Quantify drift of each window against the reference.
//   ccsynth monitor --reference <ref.csv> <stream.csv|-> [--window N]
//                   [--slide M] [--threshold T] [--refresh-every K]
//                   [--threads N] [--json] [--stats] [--trace out.json]
//                   [--metrics-json] [--heartbeat N]
//                   [--checkpoint ckpt [--checkpoint-every K] [--resume]]
//                   [--faults spec.json|'{...}'] [--ingest-policy P]
//                   [--window-policy P] [--score-policy P]
//       Tail a CSV stream through the pipelined serving engine: one
//       score line per window (CSV or JSON lines), alarms when a window
//       exceeds the threshold (exit code 2 if any fired), optional
//       periodic incremental re-synthesis of the reference profile.
//       --stats additionally reports per-window allocation behaviour
//       (rows copied per emit, rolling-buffer reallocations and
//       capacity) plus peak RSS, making the zero-copy windowing
//       observable from the CLI. --trace records stage spans into a
//       Chrome trace-event file (chrome://tracing / Perfetto);
//       --metrics-json dumps the metrics registry (counters, queue-wait
//       histograms) as one JSON line on stderr after the run;
//       --heartbeat emits a progress line to stderr every N windows
//       (window-count based, so output is deterministic). See
//       docs/observability.md.
//       Robustness (docs/robustness.md): --checkpoint writes resumable
//       state every --checkpoint-every consumed windows (and at end of
//       run); --resume continues from that file after a crash, with the
//       resumed alarm trace bitwise identical to the uninterrupted run.
//       --faults arms the deterministic fault injector from a JSON spec
//       (a file path or an inline '{...}' literal); the per-stage
//       --*-policy flags take "fail-fast" (default), "quarantine",
//       "retry:N", or "retry:N+quarantine". SIGINT/SIGTERM drain
//       in-flight windows, write the final checkpoint, and exit 3.
//       Exit codes: 0 clean, 1 error, 2 alarms fired, 3 stopped by
//       signal (see README).
//   ccsynth explain <train.csv> <serving.csv>
//       Per-attribute responsibility for serving non-conformance.
//   ccsynth diff    <a.csv> <b.csv>
//       Dataset diff report (asymmetric violations, partitions, blame).
//   ccsynth gauntlet [--scenario <name|spec.json>] [--seed N]
//                    [--threads N] [--json] [--list] [--all]
//                    [--check-golden DIR] [--update-golden DIR] [--fuzz N]
//                    [--trace out.json]
//       Run adversarial stream scenarios (src/scenario/) through the
//       serving engine and emit deterministic alarm traces. --list
//       enumerates the catalogue; --check-golden diffs every catalogue
//       trace against DIR/<name>.trace (exit 1 on drift, printing the
//       regeneration command); --update-golden rewrites them; --fuzz
//       composes N random scenarios and verifies trace determinism
//       (rerun + 1-vs-4-thread bitwise identity), printing the failing
//       spec JSON and seed.

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "core/datadiff.h"
#include "core/drift.h"
#include "core/explain.h"
#include "core/serialize.h"
#include "core/synthesizer.h"
#include "dataframe/csv.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "stream/checkpoint.h"
#include "stream/pipeline.h"
#include "stream/supervisor.h"

namespace {

using namespace ccs;  // NOLINT

int Fail(const Status& status) {
  std::fprintf(stderr, "ccsynth: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: ccsynth "
               "<learn|check|drift|monitor|explain|diff|gauntlet> ...\n"
               "  learn    <train.csv> [-o out.ccs] [--no-disjunctive]\n"
               "           [--bound-multiplier C] [--sql] [--pretty]\n"
               "  check    <constraints.ccs> <serving.csv> [--threshold T]\n"
               "  drift    <reference.csv> <window.csv>...\n"
               "  monitor  --reference <ref.csv> <stream.csv|-> [--window N]\n"
               "           [--slide M] [--threshold T] [--refresh-every K]\n"
               "           [--threads N] [--json] [--stats]\n"
               "           [--trace out.json] [--metrics-json] [--heartbeat N]\n"
               "           [--checkpoint ckpt [--checkpoint-every K]\n"
               "           [--resume]] [--faults spec.json|'{...}']\n"
               "           [--ingest-policy P] [--window-policy P]\n"
               "           [--score-policy P]\n"
               "  explain  <train.csv> <serving.csv>\n"
               "  diff     <a.csv> <b.csv>\n"
               "  gauntlet [--scenario <name|spec.json>] [--seed N]\n"
               "           [--threads N] [--json] [--list] [--all]\n"
               "           [--check-golden DIR] [--update-golden DIR]\n"
               "           [--fuzz N] [--trace out.json]\n");
  return 1;
}

StatusOr<dataframe::DataFrame> Load(const std::string& path) {
  return dataframe::ReadCsvFile(path);
}

// SIGINT/SIGTERM raise the pipeline's stop flag; the run drains and
// exits 3. async-signal-safe: a lone atomic store.
std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true); }

int RunLearn(const std::vector<std::string>& args) {
  std::string train_path, out_path;
  bool emit_sql = false, emit_pretty = false;
  core::SynthesisOptions options;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i] == "--no-disjunctive") {
      options.include_disjunctive = false;
    } else if (args[i] == "--bound-multiplier" && i + 1 < args.size()) {
      auto c = ParseDouble(args[++i]);
      if (!c.has_value() || *c <= 0.0) {
        return Fail(Status::InvalidArgument("bad --bound-multiplier"));
      }
      options.bound_multiplier = *c;
    } else if (args[i] == "--sql") {
      emit_sql = true;
    } else if (args[i] == "--pretty") {
      emit_pretty = true;
    } else if (train_path.empty()) {
      train_path = args[i];
    } else {
      return Usage();
    }
  }
  if (train_path.empty()) return Usage();

  auto df = Load(train_path);
  if (!df.ok()) return Fail(df.status());
  core::Synthesizer synthesizer(options);
  auto phi = synthesizer.Synthesize(*df);
  if (!phi.ok()) return Fail(phi.status());

  if (emit_pretty || (out_path.empty() && !emit_sql)) {
    std::printf("%s", core::ToPrettyString(*phi).c_str());
  }
  if (emit_sql) {
    std::printf("%s\n", core::ToSqlCheck(*phi).c_str());
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) return Fail(Status::IoError("cannot write " + out_path));
    out << core::Serialize(*phi);
    std::fprintf(stderr, "ccsynth: wrote %s (%zu rows, %zu groups)\n",
                 out_path.c_str(), df->num_rows(), phi->num_groups());
  }
  return 0;
}

int RunCheck(const std::vector<std::string>& args) {
  std::string constraint_path, serving_path;
  double threshold = 0.05;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--threshold" && i + 1 < args.size()) {
      auto t = ParseDouble(args[++i]);
      if (!t.has_value()) {
        return Fail(Status::InvalidArgument("bad --threshold"));
      }
      threshold = *t;
    } else if (constraint_path.empty()) {
      constraint_path = args[i];
    } else if (serving_path.empty()) {
      serving_path = args[i];
    } else {
      return Usage();
    }
  }
  if (serving_path.empty()) return Usage();

  std::ifstream in(constraint_path);
  if (!in) return Fail(Status::IoError("cannot read " + constraint_path));
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto phi = core::Deserialize(buffer.str());
  if (!phi.ok()) return Fail(phi.status());

  auto serving = Load(serving_path);
  if (!serving.ok()) return Fail(serving.status());
  auto violations = phi->ViolationAll(*serving);
  if (!violations.ok()) return Fail(violations.status());

  size_t unsafe = 0;
  for (size_t i = 0; i < violations->size(); ++i) {
    bool flagged = (*violations)[i] > threshold;
    if (flagged) ++unsafe;
    std::printf("%zu\t%.6f\t%s\n", i, (*violations)[i],
                flagged ? "UNSAFE" : "ok");
  }
  std::fprintf(stderr,
               "ccsynth: %zu / %zu tuples unsafe (threshold %.3f), mean "
               "violation %.6f\n",
               unsafe, violations->size(), threshold, violations->Mean());
  return unsafe > 0 ? 2 : 0;
}

int RunDrift(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  auto reference = Load(args[0]);
  if (!reference.ok()) return Fail(reference.status());
  core::ConformanceDriftQuantifier quantifier;
  Status fitted = quantifier.Fit(*reference);
  if (!fitted.ok()) return Fail(fitted);
  std::printf("%-32s %s\n", "window", "drift");
  for (size_t i = 1; i < args.size(); ++i) {
    auto window = Load(args[i]);
    if (!window.ok()) return Fail(window.status());
    auto score = quantifier.Score(*window);
    if (!score.ok()) return Fail(score.status());
    std::printf("%-32s %.6f\n", args[i].c_str(), *score);
  }
  return 0;
}

int RunMonitor(const std::vector<std::string>& args) {
  std::string reference_path, stream_path, trace_path, faults_arg;
  bool emit_json = false;
  bool emit_stats = false;
  bool emit_metrics_json = false;
  bool resume = false;
  size_t heartbeat = 0;
  stream::StreamPipelineOptions options;
  options.alarm_threshold = 0.05;
  for (size_t i = 0; i < args.size(); ++i) {
    auto flag_value = [&](const char* name) -> const std::string* {
      if (args[i] == name && i + 1 < args.size()) return &args[++i];
      return nullptr;
    };
    if (const std::string* v = flag_value("--reference")) {
      reference_path = *v;
    } else if (const std::string* v = flag_value("--window")) {
      auto n = ParseInt(*v);
      if (!n.has_value() || *n <= 0) {
        return Fail(Status::InvalidArgument("bad --window"));
      }
      options.window_rows = static_cast<size_t>(*n);
    } else if (const std::string* v = flag_value("--slide")) {
      auto n = ParseInt(*v);
      if (!n.has_value() || *n <= 0) {
        return Fail(Status::InvalidArgument("bad --slide"));
      }
      options.slide_rows = static_cast<size_t>(*n);
    } else if (const std::string* v = flag_value("--threshold")) {
      auto t = ParseDouble(*v);
      if (!t.has_value()) return Fail(Status::InvalidArgument("bad --threshold"));
      options.alarm_threshold = *t;
    } else if (const std::string* v = flag_value("--refresh-every")) {
      auto n = ParseInt(*v);
      if (!n.has_value() || *n < 0) {
        return Fail(Status::InvalidArgument("bad --refresh-every"));
      }
      options.refresh_every = static_cast<size_t>(*n);
    } else if (const std::string* v = flag_value("--threads")) {
      auto n = ParseInt(*v);
      if (!n.has_value() || *n < 0) {
        return Fail(Status::InvalidArgument("bad --threads"));
      }
      options.num_threads = static_cast<size_t>(*n);
    } else if (const std::string* v = flag_value("--trace")) {
      trace_path = *v;
    } else if (const std::string* v = flag_value("--heartbeat")) {
      auto n = ParseInt(*v);
      if (!n.has_value() || *n <= 0) {
        return Fail(Status::InvalidArgument("bad --heartbeat"));
      }
      heartbeat = static_cast<size_t>(*n);
    } else if (const std::string* v = flag_value("--checkpoint")) {
      options.checkpoint_path = *v;
    } else if (const std::string* v = flag_value("--checkpoint-every")) {
      auto n = ParseInt(*v);
      if (!n.has_value() || *n < 0) {
        return Fail(Status::InvalidArgument("bad --checkpoint-every"));
      }
      options.checkpoint_every = static_cast<size_t>(*n);
    } else if (const std::string* v = flag_value("--faults")) {
      faults_arg = *v;
    } else if (const std::string* v = flag_value("--ingest-policy")) {
      auto policy = stream::FailurePolicy::Parse(*v);
      if (!policy.ok()) return Fail(policy.status());
      options.ingest_policy = *policy;
    } else if (const std::string* v = flag_value("--window-policy")) {
      auto policy = stream::FailurePolicy::Parse(*v);
      if (!policy.ok()) return Fail(policy.status());
      options.window_policy = *policy;
    } else if (const std::string* v = flag_value("--score-policy")) {
      auto policy = stream::FailurePolicy::Parse(*v);
      if (!policy.ok()) return Fail(policy.status());
      options.score_policy = *policy;
    } else if (args[i] == "--resume") {
      resume = true;
    } else if (args[i] == "--json") {
      emit_json = true;
    } else if (args[i] == "--stats") {
      emit_stats = true;
    } else if (args[i] == "--metrics-json") {
      emit_metrics_json = true;
    } else if (stream_path.empty() && !StartsWith(args[i], "--")) {
      stream_path = args[i];
    } else {
      // Unknown flag, duplicate positional, or a flag missing its value.
      return Usage();
    }
  }
  if (reference_path.empty() || stream_path.empty()) return Usage();
  if (resume && options.checkpoint_path.empty()) {
    return Fail(Status::InvalidArgument("--resume requires --checkpoint"));
  }
  // Tail semantics: parse no coarser than the window step, so on a live
  // stream the first score appears as soon as its window is complete
  // instead of after a full default-sized ingest chunk.
  size_t step = options.slide_rows == 0 ? options.window_rows
                                        : options.slide_rows;
  options.chunk_rows = std::min(options.chunk_rows, step);

  // Graceful shutdown: the first SIGINT/SIGTERM drains rather than
  // kills. SA_RESETHAND restores the default disposition after it, so a
  // second signal terminates outright — the escape hatch when ingest is
  // blocked on a silent stream that never yields the flag check.
  // Installed before Create because options are copied there.
  options.stop = &g_stop;
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleStopSignal;
  action.sa_flags = SA_RESETHAND;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  if (!faults_arg.empty()) {
    // An inline '{...}' literal or a spec file path.
    std::string text = faults_arg;
    if (!StartsWith(faults_arg, "{")) {
      std::ifstream spec_file(faults_arg);
      if (!spec_file) {
        return Fail(Status::IoError("cannot read " + faults_arg));
      }
      std::ostringstream buffer;
      buffer << spec_file.rdbuf();
      text = buffer.str();
    }
    auto fault_spec = common::fault::ParseFaultSpecJson(text);
    if (!fault_spec.ok()) return Fail(fault_spec.status());
    Status armed =
        common::fault::Injector::Global().Arm(std::move(*fault_spec));
    if (!armed.ok()) return Fail(armed);
  }

  auto reference = Load(reference_path);
  if (!reference.ok()) return Fail(reference.status());
  auto pipeline = stream::StreamPipeline::Create(*reference, options);
  if (!pipeline.ok()) return Fail(pipeline.status());

  if (resume) {
    auto checkpoint = stream::ReadCheckpointFile(options.checkpoint_path);
    if (checkpoint.ok()) {
      Status restored = pipeline->Restore(*checkpoint);
      if (!restored.ok()) return Fail(restored);
      std::fprintf(stderr,
                   "ccsynth: resumed from %s (windows=%zu rows=%zu "
                   "refreshes=%zu)\n",
                   options.checkpoint_path.c_str(),
                   checkpoint->windows_committed, checkpoint->rows_consumed,
                   checkpoint->refreshes);
    } else if (checkpoint.status().code() == StatusCode::kNotFound) {
      // First run: nothing to resume, start fresh.
      std::fprintf(stderr, "ccsynth: no checkpoint at %s, starting fresh\n",
                   options.checkpoint_path.c_str());
    } else {
      return Fail(checkpoint.status());
    }
  }

  std::ifstream file;
  if (stream_path != "-") {
    file.open(stream_path);
    if (!file) return Fail(Status::IoError("cannot read " + stream_path));
  }
  std::istream& in = stream_path == "-" ? std::cin : file;

  if (!emit_json) std::printf("window,drift,alarm\n");
  size_t windows_seen = 0, alarms_seen = 0;
  auto emit = [emit_json, heartbeat, &windows_seen,
               &alarms_seen](const core::WindowScore& score) {
    if (emit_json) {
      std::printf("{\"window\":%zu,\"drift\":%s,\"alarm\":%s}\n",
                  score.window_index, FormatDouble(score.drift).c_str(),
                  score.alarm ? "true" : "false");
    } else {
      std::printf("%zu,%s,%d\n", score.window_index,
                  FormatDouble(score.drift).c_str(), score.alarm ? 1 : 0);
    }
    ++windows_seen;
    if (score.alarm) ++alarms_seen;
    // Window-count cadence, not wall-clock: heartbeat output is a
    // deterministic function of the stream.
    if (heartbeat > 0 && windows_seen % heartbeat == 0) {
      std::fprintf(stderr, "ccsynth: heartbeat windows=%zu alarms=%zu\n",
                   windows_seen, alarms_seen);
      std::fflush(stderr);
    }
    // Scores must reach a piped consumer as they happen, not when the
    // (possibly endless) stream closes.
    std::fflush(stdout);
  };
  // The session (when tracing) brackets exactly the pipeline run; every
  // span inside Run closes before Run returns, so writing the trace
  // after it sees the complete recording.
  std::optional<obs::ObsSession> session;
  if (!trace_path.empty()) session.emplace();
  auto stats = pipeline->Run(in, emit);
  if (!trace_path.empty()) {
    Status written = session->WriteChromeTrace(trace_path);
    if (!written.ok()) return Fail(written);
    std::fprintf(stderr, "ccsynth: wrote trace %s (%zu spans, %llu dropped)\n",
                 trace_path.c_str(), session->Collect().size(),
                 static_cast<unsigned long long>(session->dropped()));
    session.reset();
  }
  if (!stats.ok()) {
    // Partial progress still reaches the operator: the run failed, but
    // the stats describe how far it got (the satellite fix — the old
    // StatusOr return dropped them).
    std::fprintf(stderr,
                 "ccsynth: failed after %zu rows, %zu windows, %zu alarms "
                 "(%zu quarantined rows, %zu retries)\n",
                 stats->rows_ingested, stats->windows_scored, stats->alarms,
                 stats->rows_quarantined, stats->retries);
    return Fail(stats.status);
  }

  std::fprintf(stderr,
               "ccsynth: %zu rows -> %zu windows, %zu alarms, %zu refreshes "
               "(%.0f rows/sec, queue peaks %zu/%zu)\n",
               stats->rows_ingested, stats->windows_scored, stats->alarms,
               stats->refreshes, stats->rows_per_second,
               stats->chunk_queue_peak, stats->window_queue_peak);
  if (stats->rows_quarantined != 0 || stats->windows_quarantined != 0 ||
      stats->retries != 0 || stats->faults_injected != 0) {
    std::fprintf(stderr,
                 "ccsynth: degraded: %zu rows quarantined, %zu windows "
                 "quarantined, %zu retries, %zu faults injected\n",
                 stats->rows_quarantined, stats->windows_quarantined,
                 stats->retries, stats->faults_injected);
  }
  if (stats->checkpoints_written != 0) {
    std::fprintf(stderr, "ccsynth: wrote %zu checkpoint(s) to %s\n",
                 stats->checkpoints_written, options.checkpoint_path.c_str());
  }
  if (emit_stats) {
    // The allocation-free-windowing confirmation: each emitted window
    // copies exactly window_rows rows out of the rolling buffer, and
    // after warm-up the buffer itself stops reallocating.
    double rows_per_window =
        stats->windows_scored > 0
            ? static_cast<double>(stats->window_rows_copied) /
                  static_cast<double>(stats->windows_scored)
            : 0.0;
    std::fprintf(stderr,
                 "ccsynth: window emits copied %zu rows (%.0f rows/window, "
                 "O(window) per emit); rolling buffer: %zu reallocs, "
                 "capacity %zu rows\n",
                 stats->window_rows_copied, rows_per_window,
                 stats->window_buffer_reallocs,
                 stats->window_buffer_capacity_rows);
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
      // Linux reports ru_maxrss in KiB.
      std::fprintf(stderr, "ccsynth: peak RSS %.1f MiB\n",
                   static_cast<double>(usage.ru_maxrss) / 1024.0);
    }
  }
  if (emit_metrics_json) {
    // Last stderr line of the run: the registry the pipeline itself
    // reported into, so it cannot disagree with the --stats numbers.
    std::fprintf(stderr, "%s\n", obs::Registry::Global().ToJson().c_str());
  }
  if (stats->stopped) {
    // Distinct from both "clean" and "alarms fired": the operator asked
    // the run to end early and it drained. Takes precedence over 2 —
    // the alarm count above is from a cut-short stream.
    std::fprintf(stderr, "ccsynth: stopped by signal (drained cleanly)\n");
    return 3;
  }
  return stats->alarms > 0 ? 2 : 0;
}

int RunExplain(const std::vector<std::string>& args) {
  if (args.size() != 2) return Usage();
  auto train = Load(args[0]);
  if (!train.ok()) return Fail(train.status());
  auto serving = Load(args[1]);
  if (!serving.ok()) return Fail(serving.status());
  auto explainer = core::NonConformanceExplainer::FromTrainingData(*train);
  if (!explainer.ok()) return Fail(explainer.status());
  auto responsibilities = explainer->ExplainDataset(*serving);
  if (!responsibilities.ok()) return Fail(responsibilities.status());
  for (const auto& r : *responsibilities) {
    std::printf("%-24s %.4f\n", r.attribute.c_str(), r.responsibility);
  }
  return 0;
}

std::string TraceToJson(const scenario::ScenarioTrace& trace) {
  std::string out = "{\"scenario\":\"" + trace.scenario + "\",\"detector\":\"" +
                    trace.detector + "\",\"seed\":" +
                    std::to_string(trace.seed) + ",\"events\":[";
  bool first = true;
  for (const scenario::TraceEvent& e : trace.events) {
    if (!first) out += ",";
    first = false;
    if (e.kind == scenario::TraceEvent::Kind::kRefresh) {
      out += "{\"refresh\":" + std::to_string(e.window_index) + "}";
    } else {
      out += "{\"window\":" + std::to_string(e.window_index) + ",\"score\":\"" +
             FormatDouble(e.score) + "\",\"alarm\":" +
             (e.alarm ? "true" : "false") + "}";
    }
  }
  out += "],\"status\":\"" + trace.terminal.ToString() + "\",\"windows\":" +
         std::to_string(trace.windows_scored) + ",\"alarms\":" +
         std::to_string(trace.alarms) + ",\"refreshes\":" +
         std::to_string(trace.refreshes) + "}";
  return out;
}

// Resolves --scenario: a catalogue name, or a path to a spec JSON file.
StatusOr<scenario::ScenarioSpec> ResolveScenario(const std::string& arg) {
  std::ifstream file(arg);
  if (file) {
    std::stringstream buffer;
    buffer << file.rdbuf();
    auto spec = scenario::ParseSpecJson(buffer.str());
    if (spec.ok() && spec->name.empty()) spec->name = arg;
    return spec;
  }
  return scenario::CatalogueSpec(arg);
}

// Verifies one fuzz draw: the trace must be identical on a rerun and at
// 4 scoring threads. Prints the replayable (spec JSON, seed) on failure.
int CheckFuzzDraw(const scenario::ScenarioSpec& spec, uint64_t seed) {
  auto first = scenario::RunScenario(spec, seed, /*num_threads=*/1);
  auto rerun = scenario::RunScenario(spec, seed, /*num_threads=*/1);
  auto threaded = scenario::RunScenario(spec, seed, /*num_threads=*/4);
  const char* failure = nullptr;
  if (!first.ok() || !rerun.ok() || !threaded.ok()) {
    failure = "run failed";
  } else if (!scenario::TracesIdentical(*first, *rerun)) {
    failure = "trace differs across reruns";
  } else if (!scenario::TracesIdentical(*first, *threaded)) {
    failure = "trace differs at 1 vs 4 threads";
  }
  if (failure == nullptr) return 0;
  std::fprintf(stderr, "ccsynth gauntlet: FUZZ FAILURE (%s) at seed %llu\n",
               failure, static_cast<unsigned long long>(seed));
  if (!first.ok()) {
    std::fprintf(stderr, "  status: %s\n",
                 first.status().ToString().c_str());
  }
  std::fprintf(stderr, "  replay spec:\n%s\n",
               scenario::SpecToJson(spec).c_str());
  std::fprintf(stderr,
               "  replay: write the spec to spec.json and run: ccsynth "
               "gauntlet --scenario spec.json --seed %llu\n",
               static_cast<unsigned long long>(seed));
  return 1;
}

int RunGauntlet(const std::vector<std::string>& args) {
  bool list = false, emit_json = false, all = false;
  uint64_t seed = 1;
  size_t threads = 1;
  size_t fuzz = 0;
  std::string scenario_arg, check_dir, update_dir, trace_path;
  for (size_t i = 0; i < args.size(); ++i) {
    auto flag_value = [&](const char* name) -> const std::string* {
      if (args[i] == name && i + 1 < args.size()) return &args[++i];
      return nullptr;
    };
    if (const std::string* v = flag_value("--scenario")) {
      scenario_arg = *v;
    } else if (const std::string* v = flag_value("--seed")) {
      auto n = ParseInt(*v);
      if (!n.has_value() || *n < 0) {
        return Fail(Status::InvalidArgument("bad --seed"));
      }
      seed = static_cast<uint64_t>(*n);
    } else if (const std::string* v = flag_value("--threads")) {
      auto n = ParseInt(*v);
      if (!n.has_value() || *n <= 0) {
        return Fail(Status::InvalidArgument("bad --threads"));
      }
      threads = static_cast<size_t>(*n);
    } else if (const std::string* v = flag_value("--fuzz")) {
      auto n = ParseInt(*v);
      if (!n.has_value() || *n <= 0) {
        return Fail(Status::InvalidArgument("bad --fuzz"));
      }
      fuzz = static_cast<size_t>(*n);
    } else if (const std::string* v = flag_value("--check-golden")) {
      check_dir = *v;
    } else if (const std::string* v = flag_value("--update-golden")) {
      update_dir = *v;
    } else if (const std::string* v = flag_value("--trace")) {
      trace_path = *v;
    } else if (args[i] == "--list") {
      list = true;
    } else if (args[i] == "--json") {
      emit_json = true;
    } else if (args[i] == "--all") {
      all = true;
    } else {
      return Usage();
    }
  }

  if (list) {
    for (const std::string& name : scenario::CatalogueNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  // With --trace, record the whole gauntlet body (whichever mode runs)
  // under one session and write the trace even on early exits. Golden
  // traces stay bitwise identical: ObsSpans never touch the scenario's
  // alarm trace (see docs/observability.md).
  auto body = [&]() -> int {
  if (fuzz > 0) {
    size_t failures = 0;
    for (size_t i = 0; i < fuzz; ++i) {
      // One composer seed per draw, derived from --seed: each draw is
      // replayable on its own.
      uint64_t draw_seed = seed + i;
      Rng composer(draw_seed);
      scenario::ScenarioSpec spec = scenario::RandomSpec(&composer);
      failures += static_cast<size_t>(CheckFuzzDraw(spec, draw_seed));
    }
    std::fprintf(stderr, "ccsynth gauntlet: fuzz %zu draws, %zu failures\n",
                 fuzz, failures);
    return failures > 0 ? 1 : 0;
  }

  // Golden modes and --all sweep the catalogue; otherwise a single
  // --scenario is required.
  std::vector<scenario::ScenarioSpec> specs;
  if (all || !check_dir.empty() || !update_dir.empty()) {
    if (!scenario_arg.empty()) return Usage();
    for (const std::string& name : scenario::CatalogueNames()) {
      auto spec = scenario::CatalogueSpec(name);
      if (!spec.ok()) return Fail(spec.status());
      specs.push_back(std::move(*spec));
    }
  } else {
    if (scenario_arg.empty()) return Usage();
    auto spec = ResolveScenario(scenario_arg);
    if (!spec.ok()) return Fail(spec.status());
    specs.push_back(std::move(*spec));
  }

  size_t mismatches = 0;
  for (const scenario::ScenarioSpec& spec : specs) {
    auto trace = scenario::RunScenario(spec, seed, threads);
    if (!trace.ok()) return Fail(trace.status());
    if (!update_dir.empty()) {
      std::string path = update_dir + "/" + spec.name + ".trace";
      std::ofstream out(path);
      if (!out) return Fail(Status::IoError("cannot write " + path));
      out << trace->ToString();
      std::fprintf(stderr, "ccsynth gauntlet: wrote %s\n", path.c_str());
      continue;
    }
    if (!check_dir.empty()) {
      std::string path = check_dir + "/" + spec.name + ".trace";
      std::ifstream golden(path);
      if (!golden) {
        std::fprintf(stderr, "ccsynth gauntlet: MISSING golden %s\n",
                     path.c_str());
        ++mismatches;
        continue;
      }
      std::stringstream buffer;
      buffer << golden.rdbuf();
      if (buffer.str() == trace->ToString()) {
        std::fprintf(stderr, "ccsynth gauntlet: %-24s ok\n",
                     spec.name.c_str());
      } else {
        std::fprintf(stderr, "ccsynth gauntlet: %-24s TRACE DRIFT vs %s\n",
                     spec.name.c_str(), path.c_str());
        ++mismatches;
      }
      continue;
    }
    if (emit_json) {
      std::printf("%s\n", TraceToJson(*trace).c_str());
    } else {
      std::printf("%s", trace->ToString().c_str());
    }
  }
  if (mismatches > 0) {
    std::fprintf(stderr,
                 "ccsynth gauntlet: %zu trace(s) drifted. If the change is "
                 "intended, regenerate with:\n  ccsynth gauntlet "
                 "--update-golden %s\nand commit the result (see "
                 "docs/scenarios.md).\n",
                 mismatches, check_dir.c_str());
    return 1;
  }
  return 0;
  };  // body

  if (trace_path.empty()) return body();
  obs::ObsSession session;
  int rc = body();
  Status written = session.WriteChromeTrace(trace_path);
  if (!written.ok()) return Fail(written);
  std::fprintf(stderr,
               "ccsynth gauntlet: wrote trace %s (%zu spans, %llu dropped)\n",
               trace_path.c_str(), session.Collect().size(),
               static_cast<unsigned long long>(session.dropped()));
  return rc;
}

int RunDiff(const std::vector<std::string>& args) {
  if (args.size() != 2) return Usage();
  auto a = Load(args[0]);
  if (!a.ok()) return Fail(a.status());
  auto b = Load(args[1]);
  if (!b.ok()) return Fail(b.status());
  auto diff = core::DiffDatasets(*a, *b);
  if (!diff.ok()) return Fail(diff.status());
  std::printf("%s", diff->ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "learn") return RunLearn(args);
  if (command == "check") return RunCheck(args);
  if (command == "drift") return RunDrift(args);
  if (command == "monitor") return RunMonitor(args);
  if (command == "explain") return RunExplain(args);
  if (command == "diff") return RunDiff(args);
  if (command == "gauntlet") return RunGauntlet(args);
  return Usage();
}
