// Seeded violations for the fp-accumulate rule. Never compiled — linted
// only by tools/ccs_lint.py --self-test; EXPECT-LINT markers declare
// exactly which findings the linter must produce.

#include <cstddef>

namespace fixture {

double MacInForLoop(const double* a, const double* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += a[i] * b[i];  // EXPECT-LINT: fp-accumulate
  }
  return acc;
}

double SingleLineMac(const double* a, const double* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc -= a[i] * b[i];  // EXPECT-LINT: fp-accumulate
  return acc;
}

double ScalarReduction(const double* a, size_t n) {
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += a[i];  // EXPECT-LINT: fp-accumulate
  }
  return total;
}

// Blessed: a CCS_NOINLINE body is a contract kernel; accumulation
// inside it is the point, not a violation.
CCS_NOINLINE double BlessedKernel(const double* a, const double* b,
                                  size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

// A declaration-only CCS_NOINLINE must not bless the next function.
CCS_NOINLINE double BlessedElsewhere(const double* a, size_t n);

double NotBlessedByDeclarationAbove(const double* a, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += a[i] * a[i];  // EXPECT-LINT: fp-accumulate
  return acc;
}

// Suppressed: an explained allow on the preceding comment line.
double ExplainedFold(const double* w, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    // ccs-lint: allow(fp-accumulate): fixture demo of an explained fold
    acc += w[i];
  }
  return acc;
}

// Integer accumulation is not a floating-point contract concern.
size_t IntegerSum(const size_t* a, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) count += a[i];
  return count;
}

}  // namespace fixture
