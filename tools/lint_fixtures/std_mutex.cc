// Seeded violations for the std-mutex rule: raw standard-library
// synchronization primitives are invisible to Clang's thread-safety
// analysis; everything outside src/common/mutex.h must use the
// annotated common::Mutex / MutexLock / CondVar wrappers.

#include <mutex>

namespace fixture {

void LocksRawMutex() {
  static std::mutex mu;  // EXPECT-LINT: std-mutex
  std::lock_guard<std::mutex> lock(mu);  // EXPECT-LINT: std-mutex
}

void WaitsOnRawCondVar() {
  std::condition_variable cv;  // EXPECT-LINT: std-mutex
  cv.notify_all();
}

}  // namespace fixture
