// A fixture with no findings: the blessed and annotated shapes the
// linter must accept without any suppression.

#include <atomic>
#include <cstddef>
#include <deque>

#include "common/mutex.h"

namespace fixture {

// FP accumulation belongs in a CCS_NOINLINE kernel.
CCS_NOINLINE double DotKernel(const double* a, const double* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

// Mutex-holding classes annotate every guarded member.
class Queue {
 public:
  bool Push(int v) CCS_EXCLUDES(mu_);
  void Close() CCS_EXCLUDES(mu_);

 private:
  const size_t capacity_ = 16;
  mutable common::Mutex mu_;
  common::CondVar not_empty_;
  std::deque<int> items_ CCS_GUARDED_BY(mu_);
  bool closed_ CCS_GUARDED_BY(mu_) = false;
  std::atomic<size_t> pops_{0};
};

// Non-FP loops and non-loop FP arithmetic are out of scope.
double Scale(double x, size_t n) {
  double y = x;
  y += static_cast<double>(n);
  return y;
}

}  // namespace fixture
