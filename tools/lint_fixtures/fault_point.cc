// ccs-lint-fixture-path: src/example/fault_point.cc
// Seeded violations for the fault-point rule: CCS_FAULT_POINT names are
// inline string literals, unique per file (cross-file uniqueness is
// checked at aggregation in main(), which one fixture cannot prove).

namespace fixture {

int FineLiteralPoint() {
  CCS_FAULT_POINT("example.read");
  return 0;
}

int NonLiteralName(const char* name) {
  CCS_FAULT_POINT(name);  // EXPECT-LINT: fault-point
  return 0;
}

int ConcatenatedName() {
  CCS_FAULT_POINT("example." + stage);  // EXPECT-LINT: fault-point
  return 0;
}

int DuplicateInFile() {
  CCS_FAULT_POINT("example.read");  // EXPECT-LINT: fault-point
  return 0;
}

int MentionsTheMacroOnlyInComments() {
  // Discussing CCS_FAULT_POINT("in.a.comment") is fine; the linter
  // strips comments before matching tokens.
  return 0;
}

}  // namespace fixture
