// Seeded violations for the wall-clock rule: clock reads outside
// src/obs/ can leak time into computation (scores, ordering, refresh
// cadence), breaking the determinism contract. Out-of-band measurement
// must route through obs::NowNanos().
// ccs-lint-fixture-path: src/core/wall_clock.cc

#include <chrono>

namespace fixture {

long ReadsSteadyClock() {
  auto t = std::chrono::steady_clock::now();  // EXPECT-LINT: wall-clock
  return t.time_since_epoch().count();
}

long ReadsSystemClock() {
  using clock = std::chrono::system_clock;  // EXPECT-LINT: wall-clock
  return clock::now().time_since_epoch().count();
}

long ReadsHighResolutionClock() {
  // ccs-lint: allow(wall-clock): fixture demonstrating the escape hatch
  return std::chrono::high_resolution_clock::now().time_since_epoch().count();
}

}  // namespace fixture
