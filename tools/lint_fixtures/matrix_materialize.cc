// Seeded violations for the matrix-materialize rule: NumericMatrixFor
// under src/core/ or src/stream/ rebuilds a per-call Matrix in the hot
// synthesize→score layers, reintroducing the allocations the zero-copy
// view layer (NumericViewFor / DerivedViewFor) exists to eliminate.
// ccs-lint-fixture-path: src/core/matrix_materialize.cc

namespace fixture {

template <typename Frame>
int MaterializesInHotLayer(const Frame& df) {
  return df.NumericMatrixFor(1);  // EXPECT-LINT: matrix-materialize
}

template <typename Frame>
int ColdCallerWithReason(const Frame& df) {
  // ccs-lint: allow(matrix-materialize): fixture demonstrating the
  // escape hatch for a genuinely cold caller
  return df.NumericMatrixFor(2);
}

template <typename Frame>
int WalksTheViewInstead(const Frame& df) {
  return df.NumericViewFor(3);
}

}  // namespace fixture
