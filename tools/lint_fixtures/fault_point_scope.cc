// Seeded violation for the fault-point scope facet: this fixture keeps
// its own (tools/) path, and fault points are confined to src/ — a
// point in tests or tools would register hit ordinals that production
// runs never see.

namespace fixture {

int ProbeOutsideSrc() {
  CCS_FAULT_POINT("probe.read");  // EXPECT-LINT: fault-point
  return 0;
}

int AllowedOutsideSrc() {
  // ccs-lint: allow(fault-point): fixture demo of an explained probe
  CCS_FAULT_POINT("probe.write");
  return 0;
}

}  // namespace fixture
