// Seeded violations for the guarded-by rule: a class holding a Mutex by
// value must annotate every mutable member with CCS_GUARDED_BY (or be
// const/atomic, or explain itself).

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/mutex.h"

namespace fixture {

class Guarded {
 public:
  void Poke() CCS_EXCLUDES(mu_);
  size_t size() const CCS_EXCLUDES(mu_);

 private:
  common::Mutex mu_;
  std::vector<int> items_ CCS_GUARDED_BY(mu_);
  bool closed_ CCS_GUARDED_BY(mu_) = false;
  size_t peak_;  // EXPECT-LINT: guarded-by
  double total_ = 0.0;  // EXPECT-LINT: guarded-by
  std::atomic<size_t> hits_{0};
  const size_t capacity_ = 8;
  // ccs-lint: allow(guarded-by): fixture demo — written before threads start
  size_t config_;
};

// No mutex member: nothing to demand.
struct Unlocked {
  size_t count = 0;
  double mean = 0.0;
};

}  // namespace fixture
