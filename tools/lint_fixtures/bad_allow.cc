// Seeded violations for the bad-allow rule: every suppression must name
// a real rule and carry a reason.

#include <cstddef>

namespace fixture {

// ccs-lint: allow(fp-accumulate)  EXPECT-LINT: bad-allow
void ReasonlessAllow() {}

// ccs-lint: allow(made-up-rule): not a rule the linter knows  EXPECT-LINT: bad-allow
void UnknownRuleAllow() {}

// ccs-lint: this is not even the allow grammar  EXPECT-LINT: bad-allow
void MalformedComment() {}

}  // namespace fixture
