// ccs-lint-fixture-path: src/linalg/fixture_kernels.cc
// Seeded violations for the kernel-noinline rule: functions in the
// blessed linalg::internal namespace must carry CCS_NOINLINE. The
// fixture-path header makes the linter treat this file as part of
// src/linalg.

#include <cstddef>

namespace ccs::linalg {
namespace internal {

void UnpinnedKernel(const double* a, size_t n, double* out) {  // EXPECT-LINT: kernel-noinline
  for (size_t i = 0; i < n; ++i) out[0] += a[i] * a[i];
}

CCS_NOINLINE void PinnedKernel(const double* a, size_t n, double* out) {
  // Blessed on both counts: in the internal namespace (fp-accumulate
  // suppressed) and carrying the macro (kernel-noinline satisfied).
  for (size_t i = 0; i < n; ++i) out[0] += a[i] * a[i];
}

CCS_NOINLINE double PinnedMultiLineSignature(const double* a,
                                             const double* b,
                                             size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace internal

// Outside the internal namespace the rule does not apply, but the
// fp-accumulate rule does again.
double PlainHelper(const double* a, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += a[i] * a[i];  // EXPECT-LINT: fp-accumulate
  return acc;
}

}  // namespace ccs::linalg
