// Seeded violations for the rng-parallel rule: Rng is thread-affine,
// so any mention of it in a file that also dispatches parallel work
// (ParallelFor / ParallelForEach / std::thread) must explain its
// per-lane partitioning. Byte-replayable scenario rendering
// (src/scenario) depends on this seed discipline.

namespace fixture {

template <typename F>
void ParallelFor(int n, F fn) {
  for (int i = 0; i < n; ++i) fn(i);
}

void SharesOneRngAcrossLanes(int n) {
  ccs::Rng rng(42);  // EXPECT-LINT: rng-parallel
  ParallelFor(n, [&](int) { (void)rng; });
}

void ExplainedPerLaneStreams(int n) {
  // ccs-lint: allow(rng-parallel): one Rng per lane via MixSeed(seed, lane)
  ccs::Rng lane_rng(7);
  ParallelFor(n, [&](int) { (void)lane_rng; });
}

void MentionsRngOnlyInComments() {
  // Talking about an Rng in a comment is fine; the linter strips
  // comments before matching tokens, and lower-case variable names
  // like rng never match the type token.
}

}  // namespace fixture
