// Seeded violations for the thread-spawn rule: std::thread belongs in
// src/common/parallel only; everything else routes work through the
// shared pool or explains itself.

#include <thread>

namespace fixture {

void SpawnsDirectly() {
  std::thread worker([] {});  // EXPECT-LINT: thread-spawn
  worker.join();
}

void SpawnsWithExplanation() {
  // ccs-lint: allow(thread-spawn): fixture demo of an explained spawn
  std::thread stage([] {});
  stage.join();
}

void MentionsThreadsOnlyInComments() {
  // Talking about std::thread in a comment is fine; the linter strips
  // comments before matching tokens.
}

}  // namespace fixture
