// Seeded violation for the unused-allow rule: a suppression that
// suppresses nothing is stale and must be removed, so allows cannot
// quietly outlive the code they excused.

#include <cstddef>

namespace fixture {

// ccs-lint: allow(thread-spawn): nothing here spawns  EXPECT-LINT: unused-allow
void NoThreadsHere() {}

// ccs-lint: allow-file(std-mutex): no raw primitives in this file  EXPECT-LINT: unused-allow
void NoMutexesEither() {}

}  // namespace fixture
