#!/usr/bin/env python3
"""Fail on broken relative links in Markdown files.

Usage: tools/check_links.py FILE.md [FILE.md ...]

Checks every inline Markdown link/image ``[text](target)`` whose target
is a relative path: the referenced file must exist relative to the
Markdown file's directory. When the target carries a ``#fragment`` into
another Markdown file, the fragment must match a heading in that file
(GitHub anchor rules: lowercase, punctuation stripped, spaces to
hyphens). External (``http://``, ``https://``, ``mailto:``) and
pure-in-page (``#...``) targets are skipped — CI must not depend on
network reachability. Exits 1 listing every broken link, 0 when clean.

Stdlib only; used by the CI docs job and runnable locally.
"""

import re
import sys
from pathlib import Path

# Inline links/images. [text](target) with an optional "title" — nested
# parens in targets are not used in this repo.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*([^)\s]+)(?:\s+\"[^\"]*\")?\s*\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_anchor(heading: str) -> str:
    """The anchor GitHub generates for a heading."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # Unwrap links.
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_in(md_file: Path) -> set:
    """All anchors GitHub generates for the file's headings, including
    the -1, -2 suffixes repeated headings get."""
    anchors = set()
    counts = {}
    in_fence = False
    for line in md_file.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            base = github_anchor(m.group(1))
            n = counts.get(base, 0)
            counts[base] = n + 1
            anchors.add(base if n == 0 else f"{base}-{n}")
    return anchors


def links_in(md_file: Path):
    """Yields (line_number, target) for inline links outside code fences
    and outside inline code spans."""
    in_fence = False
    for lineno, line in enumerate(
        md_file.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        # `[not](a-link)` inside backticks is literal text, not a link.
        line = re.sub(r"`[^`]*`", "", line)
        for m in LINK_RE.finditer(line):
            yield lineno, m.group(1)


def check_file(md_file: Path) -> list:
    errors = []
    for lineno, target in links_in(md_file):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path_part, _, fragment = target.partition("#")
        resolved = (md_file.parent / path_part).resolve()
        if not resolved.exists():
            errors.append(f"{md_file}:{lineno}: broken link -> {target}")
            continue
        if fragment and resolved.suffix.lower() == ".md":
            if fragment not in anchors_in(resolved):
                errors.append(
                    f"{md_file}:{lineno}: missing anchor -> {target}"
                )
    return errors


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 1
    errors = []
    checked = 0
    for arg in argv[1:]:
        md_file = Path(arg)
        if not md_file.exists():
            errors.append(f"{md_file}: no such file")
            continue
        checked += 1
        errors.extend(check_file(md_file))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"check_links: {checked} file(s), {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
